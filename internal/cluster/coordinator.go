// Package cluster is the fleet coordinator and the node-side member
// agent: JouleGuard's energy guarantee (Sec. 3, Eq. 6) lifted from one
// machine to a fleet of governor daemons sharing one global budget.
//
// The coordinator owns the fleet budget and delegates it through
// expiring leases: each member daemon joins, receives a cumulative
// budget lease that feeds its local broker, and renews the lease by
// heartbeat, reporting its cumulative consumption. A node that stops
// heartbeating is expired: its unspent lease is booked as consumed
// (pessimistically — the partitioned node may still be spending it, up
// to exactly that amount, before its own fence trips), and its sessions
// are restored on surviving nodes by replaying the iteration logs the
// dead node shipped in its heartbeats. A node that rejoins reconciles:
// it reports its true cumulative spend and the coordinator refunds the
// over-booked escrow. The safety invariant, re-checked after every
// ledger mutation and pinned by the lease-safety tests:
//
//	sum(live nodes' unspent leases) + consumed (incl. escrow) <= fleet budget
//
// Because a node can spend at most its unspent lease before fencing,
// the fleet's physical energy draw can never exceed the budget — under
// crashes, partitions, rejoins and failover alike.
package cluster

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"sync"
	"time"

	"jouleguard/internal/qos"
	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// Config tunes a Coordinator. FleetBudgetJ is required.
type Config struct {
	// FleetBudgetJ is the fleet-wide energy budget delegated via leases.
	FleetBudgetJ float64
	// ReserveFrac is the slice of the pool withheld from steady-state
	// leasing so failover adoptions can always be funded (default 0.10).
	ReserveFrac float64
	// LeaseTTL is the lease term: a node that has not heartbeat within
	// it is expired (default 3s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the renewal cadence suggested to nodes
	// (default LeaseTTL/4).
	HeartbeatEvery time.Duration
	// InitialLeaseJ seeds a joining node's lease (default a 1/8 share of
	// the leasable pool).
	InitialLeaseJ float64
	// SweepInterval paces the expiry watchdog (default LeaseTTL/4; < 0
	// disables the goroutine — tests call Sweep directly).
	SweepInterval time.Duration
	// Telemetry is the shared observability sink (nil builds a private
	// one).
	Telemetry *telemetry.Telemetry
	// Clock is injectable for tests (nil = time.Now).
	Clock func() time.Time
	// HTTPClient performs the coordinator->node adoption pushes.
	HTTPClient *http.Client
	// WALPath, when non-empty, mirrors the ledger write-ahead log to an
	// append-only JSONL file. An existing file is replayed by New, so a
	// restarted coordinator resumes with a bit-identical ledger; the
	// in-memory log (and the /v1/cluster/wal tail it serves to standbys)
	// exists regardless of whether a file is configured.
	WALPath string
	// Follower starts the coordinator as a non-serving standby: it
	// rejects control-plane calls with not_primary and shadows the
	// primary's ledger by applying tailed WAL records until Promote.
	Follower bool
}

// node is the coordinator's ledger record for one member.
type node struct {
	id    string
	addr  string
	epoch int64
	// leaseJ is the cumulative budget granted; ackedJ the cumulative
	// consumption acknowledged. unspent = leaseJ - ackedJ is what the
	// node may still spend.
	leaseJ  float64
	ackedJ  float64
	targetJ float64 // unspent level heartbeat top-ups restore
	// escrowJ is the unspent lease booked as consumed when the lease
	// expired, awaiting reconciliation if the node rejoins.
	escrowJ  float64
	lastBeat time.Time
	live     bool
	// policies is the node's latest local qos ladder report (escalated
	// tenants only); the fleet-wide policy is the max-merge across live
	// nodes' reports, recomputed every heartbeat.
	policies []wire.TenantPolicy
}

func (n *node) unspent() float64 {
	if !n.live {
		return 0
	}
	return n.leaseJ - n.ackedJ
}

// sessRec is the coordinator's copy of one session: the registration
// and acked iteration log are exactly what failover needs to rebuild it
// on a surviving node by replay.
type sessRec struct {
	key    string
	id     string // owner-local session id
	node   string // owner node id ("" while awaiting a node)
	placed bool   // a node has reported it (reg/grant are authoritative)
	moving bool   // an adopt push is in flight; ownership is in transit
	// walGhost marks a placement learned from WAL replay: ownership is
	// known but the registration and log are not (heartbeats re-ship
	// them). Reassign must not act on a ghost until the owner has had a
	// lease term to rejoin and report, or it would push empty state over
	// a live session.
	walGhost bool
	reg      wire.RegisterRequest
	grantJ   float64
	spentJ   float64
	done     int
	comp     bool
	log      []wire.IterRec
}

// Coordinator owns the fleet energy budget and the session placement
// map. All state is in memory; nodes are the durable replicas (their
// heartbeats rebuild placement, and node-local snapshots survive node
// restarts).
type Coordinator struct {
	cfg   Config
	tel   *telemetry.Telemetry
	clock func() time.Time
	httpc *http.Client

	mu         sync.Mutex
	nodes      map[string]*node
	sessions   map[string]*sessRec // by key
	byID       map[string]*sessRec // by owner-local id
	consumedJ  float64             // booked consumption incl. escrow
	epochCtr   int64
	violations int
	reassigned int
	// fence is the fencing epoch: bumped on every promotion, carried in
	// every response, and the proof of who the serving primary is — any
	// peer presenting a higher fence deposes us on the spot.
	fence    int64
	follower bool // standby shadow: serves nothing until Promote
	deposed  bool // out-fenced primary: serves nothing ever again
	walSeq   uint64
	// graceUntil holds Reassign back from acting on WAL-ghost placements
	// after a promotion or restart, giving owners one lease term to
	// rejoin and re-report their sessions.
	graceUntil time.Time
	wal        *ledgerWAL

	stopSweep chan struct{}
	sweepDone chan struct{}

	// roll aggregates member metric summaries into the fleet-level
	// exposition at /v1/cluster/metrics (rollup.go). Mutated only under
	// c.mu, from Heartbeat.
	roll *rollup

	gNodes, gUnspent, gConsumed, gPool           *telemetry.Gauge
	cBeats, cExpiries, cReassign, cPlaced, cViol *telemetry.Counter
	gDriftFleet, gDriftNodes                     *telemetry.Gauge
	fidelity                                     map[string]*telemetry.Gauge
}

// New builds a Coordinator and starts its expiry watchdog (unless
// disabled).
func New(cfg Config) (*Coordinator, error) {
	if cfg.FleetBudgetJ <= 0 {
		return nil, fmt.Errorf("cluster: fleet budget %v must be positive", cfg.FleetBudgetJ)
	}
	if cfg.ReserveFrac <= 0 || cfg.ReserveFrac >= 1 {
		cfg.ReserveFrac = 0.10
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 3 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = cfg.LeaseTTL / 4
	}
	if cfg.InitialLeaseJ <= 0 {
		cfg.InitialLeaseJ = cfg.FleetBudgetJ * (1 - cfg.ReserveFrac) / 8
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = cfg.LeaseTTL / 4
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New(0)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 5 * time.Second}
	}
	c := &Coordinator{
		cfg:      cfg,
		tel:      tel,
		clock:    clock,
		httpc:    httpc,
		nodes:    map[string]*node{},
		sessions: map[string]*sessRec{},
		byID:     map[string]*sessRec{},
		fidelity: map[string]*telemetry.Gauge{},
		roll:     newRollup(),

		gNodes:    tel.Registry.Gauge("jouleguard_cluster_nodes_live", "Member daemons holding a live lease."),
		gUnspent:  tel.Registry.Gauge("jouleguard_cluster_leases_unspent_joules", "Sum of live nodes' unspent budget leases."),
		gConsumed: tel.Registry.Gauge("jouleguard_cluster_consumed_joules", "Booked fleet consumption, incl. pessimistic escrow."),
		gPool:     tel.Registry.Gauge("jouleguard_cluster_pool_joules", "Unleased remainder of the fleet budget."),
		cBeats:    tel.Registry.Counter("jouleguard_cluster_heartbeats_total", "Lease renewals processed."),
		cExpiries: tel.Registry.Counter("jouleguard_cluster_lease_expiries_total", "Leases reclaimed from silent nodes."),
		cReassign: tel.Registry.Counter("jouleguard_cluster_reassignments_total", "Sessions moved to a new owner node."),
		cPlaced:   tel.Registry.Counter("jouleguard_cluster_sessions_placed_total", "Sessions placed onto nodes."),
		cViol:     tel.Registry.Counter("jouleguard_cluster_invariant_violations_total", "Failed fleet-ledger self-checks (should stay 0)."),

		gDriftFleet: tel.Registry.Gauge("jouleguard_provenance_drift_joules",
			"Conservation drift per custody layer (0 when the books balance).",
			telemetry.Label{Name: "layer", Value: "fleet"}),
		gDriftNodes: tel.Registry.Gauge("jouleguard_provenance_drift_joules",
			"Conservation drift per custody layer (0 when the books balance).",
			telemetry.Label{Name: "layer", Value: "nodes"}),
	}
	tel.Registry.Gauge("jouleguard_cluster_fleet_joules", "Fleet-wide energy budget.").Set(cfg.FleetBudgetJ)
	c.follower = cfg.Follower
	// /healthz answers with the coordinator's role and fence so a load
	// balancer (or jgtop) can tell the primary from a standby without
	// probing the control plane for a 503. The span-buffer identity stays
	// whatever the host process set (a member daemon's node name) unless
	// nothing claimed it yet.
	tel.SetHealth(func() telemetry.HealthInfo {
		c.mu.Lock()
		defer c.mu.Unlock()
		role := "primary"
		switch {
		case c.follower:
			role = "standby"
		case c.deposed:
			role = "deposed"
		}
		return telemetry.HealthInfo{Role: role, Fence: c.fence}
	})
	if tel.Spans.Node() == "" {
		tel.Spans.SetNode("coordinator")
	}
	// Replay an existing WAL before opening it for append: the restarted
	// coordinator resumes the old reign's ledger (and fence) exactly, and
	// the fresh header this run appends records the continuation.
	if cfg.WALPath != "" {
		if _, err := c.ReplayWALFile(cfg.WALPath); err != nil {
			return nil, err
		}
	}
	w, err := newLedgerWAL(cfg.WALPath, cfg.FleetBudgetJ, c.fence)
	if err != nil {
		return nil, err
	}
	w.seq = c.walSeq
	c.wal = w
	if cfg.SweepInterval > 0 && !c.follower {
		c.stopSweep = make(chan struct{})
		c.sweepDone = make(chan struct{})
		go c.sweepLoop()
	}
	return c, nil
}

// Telemetry returns the sink the coordinator reports into.
func (c *Coordinator) Telemetry() *telemetry.Telemetry { return c.tel }

// Stop halts the expiry watchdog and closes the WAL file mirror.
func (c *Coordinator) Stop() {
	if c.stopSweep != nil {
		close(c.stopSweep)
		<-c.sweepDone
		c.stopSweep = nil
	}
	if c.wal != nil {
		c.wal.Close()
	}
}

// Fence reports the coordinator's fencing epoch.
func (c *Coordinator) Fence() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fence
}

// gateLocked enforces the control-plane serving rules: a follower
// (standby not yet promoted) serves nothing, a deposed primary serves
// nothing, and a peer carrying a higher fence than ours is proof a
// standby promoted over us — we step down on the spot rather than issue
// one more grant the fleet would have to double-count.
func (c *Coordinator) gateLocked(peerFence int64) error {
	if c.follower {
		return &wireError{wire.CodeNotPrimary, "standby coordinator; retry against the primary"}
	}
	if peerFence > c.fence {
		c.fence = peerFence
		c.deposed = true
	}
	if c.deposed {
		return &wireError{wire.CodeStaleEpoch,
			fmt.Sprintf("coordinator deposed at fence %d; rejoin the promoted primary", c.fence)}
	}
	return nil
}

// Promote turns a standby (or a recovered coordinator) into the serving
// primary. The fencing epoch is bumped past the highest fence ever
// seen — every response now carries it, so members and clients treat
// the old primary's grants as stale — and every live node's unspent
// lease is escrowed exactly as if its lease had expired: the new
// primary cannot know how much of those grants members have spent under
// the old reign, so it books all of it pessimistically and lets each
// member rejoin-reconcile the truth back. The safety invariant
// therefore holds from the first instant of the new reign, and a joule
// promised by both coordinators is impossible by construction.
func (c *Coordinator) Promote() int64 {
	c.mu.Lock()
	c.follower = false
	c.deposed = false
	c.fence++
	c.logFenceLocked("promote")
	ids := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := c.nodes[id]
		if !n.live {
			continue
		}
		escrow := n.leaseJ - n.ackedJ
		if escrow < 0 {
			escrow = 0
		}
		n.escrowJ += escrow
		c.consumedJ += escrow
		n.live = false
		c.cExpiries.Inc()
		c.logNodeLocked("promote-escrow", n)
		c.checkLocked("promote-escrow")
	}
	c.graceUntil = c.clock().Add(c.cfg.LeaseTTL)
	fence := c.fence
	startSweep := c.cfg.SweepInterval > 0 && c.stopSweep == nil
	if startSweep {
		c.stopSweep = make(chan struct{})
		c.sweepDone = make(chan struct{})
	}
	c.mu.Unlock()
	if startSweep {
		go c.sweepLoop()
	}
	return fence
}

func (c *Coordinator) sweepLoop() {
	defer close(c.sweepDone)
	t := time.NewTicker(c.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Sweep()
		case <-c.stopSweep:
			return
		}
	}
}

// ---------------------------------------------------------------------
// Ledger arithmetic. Callers hold c.mu.

func (c *Coordinator) unspentLocked() float64 {
	total := 0.0
	for _, n := range c.nodes {
		total += n.unspent()
	}
	return total
}

// poolLocked is the unleased remainder of the fleet budget.
func (c *Coordinator) poolLocked() float64 {
	return c.cfg.FleetBudgetJ - c.consumedJ - c.unspentLocked()
}

// reserveJ is the failover reserve withheld from steady-state leasing.
func (c *Coordinator) reserveJ() float64 {
	return c.cfg.FleetBudgetJ * c.cfg.ReserveFrac
}

// checkLocked asserts the safety invariant after a ledger mutation.
func (c *Coordinator) checkLocked(op string) {
	const eps = 1e-6
	if c.unspentLocked()+c.consumedJ > c.cfg.FleetBudgetJ+eps || c.consumedJ < -eps {
		c.violations++
		c.cViol.Inc()
	}
	c.publishLocked()
	_ = op
}

func (c *Coordinator) publishLocked() {
	live := 0
	for _, n := range c.nodes {
		if n.live {
			live++
			if g := c.fidelity[n.id]; g != nil && n.leaseJ > 0 {
				g.Set(n.ackedJ / n.leaseJ)
			}
		}
	}
	c.gNodes.Set(float64(live))
	c.gUnspent.Set(c.unspentLocked())
	c.gConsumed.Set(c.consumedJ)
	c.gPool.Set(c.poolLocked())
	// Fleet-layer conservation, re-audited after every ledger mutation:
	// pool + unspent leases + booked consumption must re-compose the
	// budget (poolLocked is budget-minus-the-rest, so a drift here means a
	// NaN or sign error crept into one of the terms).
	c.gDriftFleet.Set(c.cfg.FleetBudgetJ - (c.poolLocked() + c.unspentLocked() + c.consumedJ))
}

// grantLocked moves up to wantJ from the pool onto n's lease; reserved
// budget is withheld unless dipReserve (failover adoptions may use it).
func (c *Coordinator) grantLocked(n *node, wantJ float64, dipReserve bool) float64 {
	if wantJ <= 0 || !n.live {
		return 0
	}
	avail := c.poolLocked()
	if !dipReserve {
		avail -= c.reserveJ()
	}
	if avail <= 0 {
		return 0
	}
	g := wantJ
	if g > avail {
		g = avail
	}
	n.leaseJ += g
	return g
}

// bookLocked acknowledges a node's cumulative consumption and returns
// how many joules it booked.
func (c *Coordinator) bookLocked(n *node, consumedJ float64) float64 {
	delta := consumedJ - n.ackedJ
	if delta <= 0 {
		return 0
	}
	// Never book beyond the lease: a correct node cannot spend more than
	// it was granted, so the excess is clamped (and would indicate a
	// node-side accounting bug, not fleet overdraft).
	if max := n.leaseJ - n.ackedJ; delta > max {
		delta = max
	}
	n.ackedJ += delta
	c.consumedJ += delta
	return delta
}

// ---------------------------------------------------------------------
// Membership.

// Join enrolls (or re-enrolls) a node. A rejoin reconciles the
// pessimistic escrow booked when the node's lease expired: the node
// reports its true cumulative spend, the coordinator books the part of
// the escrow that was actually spent and refunds the rest to the pool.
func (c *Coordinator) Join(req wire.JoinRequest) (wire.JoinResponse, error) {
	if req.Node == "" || req.Addr == "" {
		return wire.JoinResponse{}, &wireError{wire.CodeBadRequest, "join requires node name and address"}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.gateLocked(req.Fence); err != nil {
		return wire.JoinResponse{}, err
	}
	n := c.nodes[req.Node]
	switch {
	case n == nil:
		n = &node{id: req.Node, addr: req.Addr}
		c.nodes[req.Node] = n
		c.fidelity[req.Node] = c.tel.Registry.Gauge(
			"jouleguard_cluster_node_fidelity", "Acked spend over cumulative lease, per node.",
			telemetry.Label{Name: "node", Value: req.Node})
	case req.ConsumedJ >= n.ackedJ:
		// A continuing incarnation (kept its meter): reconcile. The
		// unacked spend d replaces the pessimistic escrow e in the books
		// (d <= e when the lease expired, because the node's broker caps
		// spend at the lease and its fence stopped it; d is booked fresh
		// when the node never expired, e = 0). The lease is reset to the
		// reported spend — zero unspent — so the e - d refund returns
		// only to the pool, never double-counted as leased budget; the
		// top-up below re-grants working room from that same pool.
		d := req.ConsumedJ - n.ackedJ
		c.consumedJ += d - n.escrowJ
		n.ackedJ = req.ConsumedJ
		n.leaseJ = n.ackedJ
		n.escrowJ = 0
	default:
		// A fresh incarnation (meter reset): the old incarnation's acked
		// spend and escrow stay booked — whatever it actually drew is
		// covered by them — and the lease restarts from zero. The escrow
		// is never refunded (no way to learn the true final spend), which
		// errs on the safe side of the fleet guarantee.
		n.leaseJ, n.ackedJ, n.escrowJ = 0, 0, 0
	}
	n.addr = req.Addr
	c.epochCtr++
	n.epoch = c.epochCtr
	n.live = true
	n.lastBeat = c.clock()
	n.targetJ = c.cfg.InitialLeaseJ
	c.grantLocked(n, n.targetJ-n.unspent(), false)
	c.logNodeLocked("join", n)
	c.checkLocked("join")

	// Tell a returning node which of its sessions moved on while it was
	// away; it must discard them (their budget was escrowed and their
	// state restored elsewhere). A key the coordinator has no record of
	// is claimed, not dropped: a coordinator that lost its placement map
	// (restart without a WAL, or a promotion racing the first report)
	// must treat the holding node as authoritative rather than order a
	// running session discarded.
	var drop []string
	for _, key := range req.HeldKeys {
		rec := c.sessions[key]
		switch {
		case rec == nil:
			c.sessions[key] = &sessRec{key: key, node: req.Node, walGhost: true}
			c.logSessLocked("place", key, req.Node)
		case rec.node != req.Node:
			drop = append(drop, key)
		}
	}
	sort.Strings(drop)
	return wire.JoinResponse{
		Epoch:       n.epoch,
		LeaseJ:      n.leaseJ,
		TTLMS:       c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMS: c.cfg.HeartbeatEvery.Milliseconds(),
		Drop:        drop,
		Fence:       c.fence,
	}, nil
}

// Heartbeat renews a lease: consumption is booked, the lease is topped
// back up to the node's target, and the session reports are folded into
// the coordinator's placement map and logs.
func (c *Coordinator) Heartbeat(req wire.HeartbeatRequest) (wire.HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.gateLocked(req.Fence); err != nil {
		return wire.HeartbeatResponse{}, err
	}
	n := c.nodes[req.Node]
	if n == nil || !n.live || n.epoch != req.Epoch {
		return wire.HeartbeatResponse{}, &wireError{wire.CodeUnknownNode,
			fmt.Sprintf("node %q has no live lease at epoch %d; rejoin", req.Node, req.Epoch)}
	}
	now := c.clock()
	// dt since the node's previous beat feeds the burn-rate EWMA; captured
	// before the stamp below overwrites it.
	dt := now.Sub(n.lastBeat).Seconds()
	n.lastBeat = now
	booked := c.bookLocked(n, req.ConsumedJ)
	// Nodes-layer conservation: after booking, the acked total should
	// match the node's reported cumulative spend exactly; a residue means
	// the clamp fired — the node claims spend beyond its lease.
	c.gDriftNodes.Set(req.ConsumedJ - n.ackedJ)
	// A node that reported no new spend does not need its historical peak
	// headroom restored: decay the ratcheted top-up target toward the
	// initial share so one busy-then-idle node cannot hoard the leasable
	// pool forever. Grants already made are never clawed back — the decay
	// only stops future top-ups; a new burst of demand re-raises the
	// target through the on-demand extension path.
	if booked <= 0 && n.targetJ > c.cfg.InitialLeaseJ {
		n.targetJ -= (n.targetJ - c.cfg.InitialLeaseJ) * targetDecay
	}
	c.grantLocked(n, n.targetJ-n.unspent(), false)
	c.cBeats.Inc()

	// Fleet rollup: fold the node's cumulative counter summary and burn,
	// and close each forwarded trace with this coordinator's lease span —
	// the final hop of the distributed iteration trace.
	c.roll.foldNode(req.Node, req.Metrics)
	c.roll.observeBurn(booked, dt)
	nowS := unixS(now)
	for _, ref := range req.Traces {
		c.tel.Spans.Record(telemetry.Span{
			Trace: ref.Trace, ID: c.tel.Spans.NextID(), Parent: ref.Span,
			Name: telemetry.SpanCoordLease, Session: ref.Session,
			StartS: nowS, EndS: nowS, AttrJ: booked, AttrIter: ref.Iter,
		})
	}

	// Tenant protection: adopt the node's latest local ladder report and
	// recompute the fleet-wide merge (max escalation across live nodes).
	// The merge rides back on this very response, so a tenant escalated
	// on any node is enforced fleet-wide within one heartbeat interval —
	// re-placing sessions onto a quieter node buys it nothing.
	n.policies = req.Tenants
	policies := c.mergePoliciesLocked()
	states := make(map[string]string, len(policies))
	for _, p := range policies {
		states[p.Tenant] = p.State
		c.roll.observeTenantQoS(p.Tenant, p.Tier, p.State)
	}

	acked := make(map[string]int, len(req.Sessions))
	for i := range req.Sessions {
		rep := &req.Sessions[i]
		var prevSpent float64
		if rec := c.sessions[rep.Key]; rec != nil {
			prevSpent = rec.spentJ
		}
		acked[rep.ID] = c.foldReportLocked(req.Node, rep)
		c.roll.observeTenant(rep.Reg.Tenant, rep.SpentJ-prevSpent, dt)
		if _, escalated := states[rep.Reg.Tenant]; !escalated {
			c.roll.observeTenantQoS(rep.Reg.Tenant, rep.Reg.Tier, "ok")
		}
	}
	for _, id := range req.Closed {
		if rec := c.byID[id]; rec != nil && rec.node == req.Node {
			delete(c.sessions, rec.key)
			delete(c.byID, id)
			c.logSessLocked("close", rec.key, "")
		}
	}
	c.logNodeLocked("heartbeat", n)
	c.checkLocked("heartbeat")
	return wire.HeartbeatResponse{
		LeaseJ:   n.leaseJ,
		TTLMS:    c.cfg.LeaseTTL.Milliseconds(),
		Acked:    acked,
		Fence:    c.fence,
		Policies: policies,
	}, nil
}

// mergePoliciesLocked folds every live node's latest local ladder
// report into the fleet-wide tenant policy: per tenant, the maximum
// escalation wins. De-escalation propagates for free — the merge is
// recomputed from the latest reports, so once the escalating node's
// ladder cools the tenant drops out of the merge and every member's
// remote overlay clears on its next beat. Callers hold c.mu.
func (c *Coordinator) mergePoliciesLocked() []wire.TenantPolicy {
	merged := map[string]wire.TenantPolicy{}
	for _, n := range c.nodes {
		if !n.live {
			continue
		}
		for _, p := range n.policies {
			if cur, ok := merged[p.Tenant]; !ok || qos.ParseState(p.State) > qos.ParseState(cur.State) {
				merged[p.Tenant] = p
			}
		}
	}
	out := make([]wire.TenantPolicy, 0, len(merged))
	for _, p := range merged {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// foldReportLocked merges one session report and returns the
// coordinator's stored log length (the node's next From index).
func (c *Coordinator) foldReportLocked(nodeID string, rep *wire.SessionReport) int {
	if rep.Key == "" {
		return 0
	}
	rec := c.sessions[rep.Key]
	if rec == nil {
		rec = &sessRec{key: rep.Key}
		c.sessions[rep.Key] = rec
	}
	if rec.id != rep.ID {
		delete(c.byID, rec.id)
		rec.id = rep.ID
		c.byID[rep.ID] = rec
	}
	if rec.node != nodeID || !rec.placed {
		c.logSessLocked("place", rep.Key, nodeID)
	}
	rec.node = nodeID
	rec.placed = true
	rec.walGhost = false
	rec.reg = rep.Reg
	rec.grantJ = rep.GrantJ
	rec.spentJ = rep.SpentJ
	rec.done = rep.Done
	rec.comp = rep.Complete
	// Append the new log entries if they extend our copy contiguously;
	// otherwise keep ours and let the ack re-sync the node's cursor.
	if rep.From <= len(rec.log) && rep.From+len(rep.NewIters) > len(rec.log) {
		rec.log = append(rec.log[:rep.From], rep.NewIters...)
	}
	return len(rec.log)
}

// targetDecay is the fraction of the gap between a node's ratcheted
// top-up target and the initial lease share reclaimed per idle
// heartbeat (one that books no new spend).
const targetDecay = 0.1

// Extend grants an on-demand lease extension (admission assists).
func (c *Coordinator) Extend(req wire.ExtendRequest) (wire.ExtendResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.gateLocked(req.Fence); err != nil {
		return wire.ExtendResponse{}, err
	}
	n := c.nodes[req.Node]
	if n == nil || !n.live || n.epoch != req.Epoch {
		return wire.ExtendResponse{}, &wireError{wire.CodeUnknownNode,
			fmt.Sprintf("node %q has no live lease at epoch %d; rejoin", req.Node, req.Epoch)}
	}
	if req.NeedJ <= 0 {
		return wire.ExtendResponse{}, &wireError{wire.CodeBadRequest, "extension must be positive"}
	}
	g := c.grantLocked(n, req.NeedJ, false)
	n.targetJ += g
	c.logNodeLocked("extend", n)
	c.checkLocked("extend")
	return wire.ExtendResponse{LeaseJ: n.leaseJ, GrantedJ: g, Fence: c.fence}, nil
}

// ---------------------------------------------------------------------
// Placement.

// mix64 is the murmur3 finalizer: raw FNV-1a over short, similar
// strings is nearly order-preserving (a "node0"/"node1"/"node2" prefix
// can win for every key), so the rendezvous score needs a full-avalanche
// pass to spread placement evenly.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rendezvous picks the live node with the highest hash(node, key) — the
// classic highest-random-weight placement: stable under membership
// change, no ring state to maintain.
func (c *Coordinator) rendezvousLocked(key string) *node {
	var best *node
	var bestScore uint64
	for _, n := range c.nodes {
		if !n.live {
			continue
		}
		h := fnv.New64a()
		h.Write([]byte(n.id))
		h.Write([]byte{0})
		h.Write([]byte(key))
		if score := mix64(h.Sum64()); best == nil || score > bestScore || (score == bestScore && n.id < best.id) {
			best, bestScore = n, score
		}
	}
	return best
}

// Place resolves (or decides) the owner of a session key. It backs the
// coordinator's register redirect and the placement lookup.
func (c *Coordinator) Place(key string) (wire.PlacementResponse, error) {
	if key == "" {
		return wire.PlacementResponse{}, &wireError{wire.CodeBadRequest, "placement requires a session key"}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.gateLocked(0); err != nil {
		return wire.PlacementResponse{}, err
	}
	if rec := c.sessions[key]; rec != nil {
		owner := c.nodes[rec.node]
		if owner == nil || !owner.live {
			return wire.PlacementResponse{}, &wireError{wire.CodeNoNodes,
				fmt.Sprintf("session %q is between nodes (owner down, failover pending); retry", key)}
		}
		return wire.PlacementResponse{Key: key, Node: owner.id, Addr: owner.addr, SessionID: rec.id, Fence: c.fence}, nil
	}
	owner := c.rendezvousLocked(key)
	if owner == nil {
		return wire.PlacementResponse{}, &wireError{wire.CodeNoNodes, "no live nodes in the fleet; retry"}
	}
	c.sessions[key] = &sessRec{key: key, node: owner.id}
	c.logSessLocked("place", key, owner.id)
	c.cPlaced.Inc()
	return wire.PlacementResponse{Key: key, Node: owner.id, Addr: owner.addr, Fence: c.fence}, nil
}

// ---------------------------------------------------------------------
// Failure handling.

// Sweep expires leases whose nodes went silent and reassigns their
// sessions to survivors. It returns how many leases it expired; the
// sweep loop calls it on SweepInterval.
func (c *Coordinator) Sweep() int {
	now := c.clock()
	c.mu.Lock()
	if c.follower || c.deposed {
		c.mu.Unlock()
		return 0
	}
	expired := 0
	for _, n := range c.nodes {
		if !n.live || now.Sub(n.lastBeat) <= c.cfg.LeaseTTL {
			continue
		}
		// Pessimistic escrow: book the whole unspent lease as consumed.
		// The node can spend at most that much before its own fence
		// trips, so the fleet total stays safe even if it is partitioned
		// rather than dead; a rejoin refunds whatever was not spent.
		// ackedJ is left alone — it must keep meaning "genuinely acked"
		// so the rejoin reconcile can tell continuing incarnations
		// (reported >= acked) from fresh ones.
		escrow := n.leaseJ - n.ackedJ
		if escrow < 0 {
			escrow = 0
		}
		n.escrowJ += escrow
		c.consumedJ += escrow
		n.live = false
		expired++
		c.cExpiries.Inc()
		c.logNodeLocked("expire", n)
		c.checkLocked("expire")
	}
	c.mu.Unlock()
	// Reassign runs on every sweep, not just fresh expiries: an adopt
	// push that failed (new owner briefly unreachable, lease applying on
	// its next heartbeat) leaves sessions stranded on a dead node until
	// some later round lands them.
	c.Reassign()
	return expired
}

// Reassign finds sessions stranded on dead nodes and restores each on a
// survivor: pick the new owner by rendezvous hashing, extend its lease
// to cover the session's remaining grant, and push the registration +
// acked iteration log for replay. Sessions the dead node never reported
// (no authoritative record yet) are unplaced — a re-registration places
// them fresh.
func (c *Coordinator) Reassign() {
	// Everything the push needs (owner id and address included) is copied
	// while c.mu is held: the node record may be rewritten by a
	// concurrent Join the moment the lock drops.
	type move struct {
		rec   *sessRec
		adopt wire.AdoptSession
		node  string
		addr  string
	}
	now := c.clock()
	c.mu.Lock()
	if c.follower || c.deposed {
		c.mu.Unlock()
		return
	}
	fence := c.fence
	var moves []move
	var keys []string
	for key := range c.sessions {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		rec := c.sessions[key]
		if rec.moving {
			continue // an adopt push from an overlapping sweep is in flight
		}
		owner := c.nodes[rec.node]
		if owner != nil && owner.live {
			continue
		}
		if rec.walGhost {
			// Ownership came from WAL replay; there is nothing to restore
			// from yet. Give the owner one lease term to rejoin and
			// re-report before concluding the session is gone.
			if now.Before(c.graceUntil) {
				continue
			}
			delete(c.byID, rec.id)
			delete(c.sessions, key)
			c.logSessLocked("close", key, "")
			continue
		}
		if !rec.placed {
			// Never reported: nothing to restore. Forget the placement so
			// the next register places it fresh.
			delete(c.byID, rec.id)
			delete(c.sessions, key)
			continue
		}
		next := c.rendezvousLocked(key)
		if next == nil {
			continue // no survivors; retry on a later sweep
		}
		// Fund the remaining grant on the new owner (reserve may be
		// tapped: failover must not starve behind admissions).
		remaining := rec.grantJ - rec.spentJ
		if remaining < 0 {
			remaining = 0
		}
		need := remaining*serverReserve - (next.targetJ - next.unspent())
		if need > 0 {
			g := c.grantLocked(next, need, true)
			next.targetJ += g
			c.logNodeLocked("reassign-fund", next)
		}
		log := make([]wire.IterRec, len(rec.log))
		copy(log, rec.log)
		// Mark the record in transit before dropping the lock: if the dead
		// owner rejoins while the push is in flight, Join must see it no
		// longer owns the key and order the local copy dropped — otherwise
		// the session would run live on two nodes at once.
		rec.node = ""
		rec.moving = true
		delete(c.byID, rec.id)
		moves = append(moves, move{
			rec:  rec,
			node: next.id,
			addr: next.addr,
			adopt: wire.AdoptSession{
				Key:    key,
				Reg:    rec.reg,
				GrantJ: rec.grantJ,
				SpentJ: rec.spentJ,
				Log:    log,
			},
		})
		c.checkLocked("reassign-fund")
	}
	c.mu.Unlock()

	for _, m := range moves {
		resp, err := c.pushAdopt(m.addr, wire.AdoptRequest{Sessions: []wire.AdoptSession{m.adopt}, Fence: fence})
		c.mu.Lock()
		m.rec.moving = false
		if err != nil {
			c.mu.Unlock()
			continue // owner unreachable; still in limbo, a later sweep retries
		}
		// Commit the new placement only if the adopting node is still live;
		// if it died during the push, its lease (including the failover
		// funding) was escrowed and the record stays unowned, so the next
		// sweep moves the session again. The old owner cannot have taken
		// the key back meanwhile: a rejoin during the in-transit window was
		// told to drop it.
		if n := c.nodes[m.node]; n != nil && n.live && m.rec.node == "" {
			m.rec.node = m.node
			c.logSessLocked("move", m.adopt.Key, m.node)
		}
		if id := resp.IDs[m.adopt.Key]; id != "" {
			m.rec.id = id
			c.byID[id] = m.rec
		}
		m.rec.done = len(m.rec.log)
		c.reassigned++
		c.cReassign.Inc()
		c.mu.Unlock()
	}
}

// serverReserve mirrors internal/server.DefaultReserve without an
// import cycle risk; the coordinator funds adoptions with the same 5%
// slack the node broker will commit.
const serverReserve = 1.05

// Info snapshots the fleet ledger and placement for introspection.
func (c *Coordinator) Info(includeDetail bool) wire.ClusterInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	role := "primary"
	switch {
	case c.follower:
		role = "standby"
	case c.deposed:
		role = "deposed"
	}
	info := wire.ClusterInfo{
		FleetJ:              c.cfg.FleetBudgetJ,
		Fence:               c.fence,
		Role:                role,
		ReserveJ:            c.reserveJ(),
		ConsumedJ:           c.consumedJ,
		LeasedUnspentJ:      c.unspentLocked(),
		PoolJ:               c.poolLocked(),
		InvariantViolations: c.violations,
		Reassignments:       c.reassigned,
	}
	for _, n := range c.nodes {
		if n.live {
			info.NodesLive++
		}
	}
	if !includeDetail {
		return info
	}
	var ids []string
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := c.nodes[id]
		count := 0
		for _, rec := range c.sessions {
			if rec.node == id {
				count++
			}
		}
		fid := 0.0
		if n.leaseJ > 0 {
			fid = n.ackedJ / n.leaseJ
		}
		info.Nodes = append(info.Nodes, wire.NodeInfo{
			Node: id, Addr: n.addr, Epoch: n.epoch, Live: n.live,
			LeaseJ: n.leaseJ, AckedJ: n.ackedJ, UnspentJ: n.unspent(),
			EscrowJ: n.escrowJ, Sessions: count, Fidelity: fid,
		})
	}
	var keys []string
	for key := range c.sessions {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		rec := c.sessions[key]
		info.Sessions = append(info.Sessions, wire.PlacementInfo{
			Key: key, Node: rec.node, ID: rec.id, Done: rec.done,
			GrantJ: rec.grantJ, SpentJ: rec.spentJ, Complete: rec.comp,
		})
	}
	return info
}

// Violations reports failed ledger self-checks (tests assert 0).
func (c *Coordinator) Violations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.violations
}
