package knob

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// profileFile is the on-disk representation of a calibration profile.
type profileFile struct {
	Version int     `json:"version"`
	App     string  `json:"app,omitempty"`
	Points  []Point `json:"points"`
}

const profileVersion = 1

// SaveProfile serialises a calibration profile as JSON, so the (possibly
// expensive) PowerDial calibration step can be cached across processes.
func SaveProfile(w io.Writer, appName string, prof *Profile) error {
	if prof == nil || len(prof.Points) == 0 {
		return fmt.Errorf("knob: refusing to save an empty profile")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(profileFile{Version: profileVersion, App: appName, Points: prof.Points})
}

// LoadProfile reads a profile saved by SaveProfile and validates it.
func LoadProfile(r io.Reader) (appName string, prof *Profile, err error) {
	var f profileFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return "", nil, fmt.Errorf("knob: decoding profile: %w", err)
	}
	if f.Version != profileVersion {
		return "", nil, fmt.Errorf("knob: unsupported profile version %d", f.Version)
	}
	if len(f.Points) == 0 {
		return "", nil, fmt.Errorf("knob: profile has no points")
	}
	for i, p := range f.Points {
		if p.Speedup <= 0 || math.IsNaN(p.Speedup) || math.IsInf(p.Speedup, 0) {
			return "", nil, fmt.Errorf("knob: point %d has invalid speedup %v", i, p.Speedup)
		}
		if p.Accuracy < 0 || p.Accuracy > 1 || math.IsNaN(p.Accuracy) {
			return "", nil, fmt.Errorf("knob: point %d has invalid accuracy %v", i, p.Accuracy)
		}
		if p.Config < 0 {
			return "", nil, fmt.Errorf("knob: point %d has invalid config %d", i, p.Config)
		}
	}
	return f.App, &Profile{Points: f.Points}, nil
}
