package knob

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSpaceValidates(t *testing.T) {
	if _, err := NewSpace(); err == nil {
		t.Error("want error for no knobs")
	}
	if _, err := NewSpace(Knob{Name: "k", Values: nil}); err == nil {
		t.Error("want error for empty knob")
	}
}

func TestSpaceSizeAndDecode(t *testing.T) {
	s, err := NewSpace(
		Knob{Name: "a", Values: []float64{1, 2, 3}},
		Knob{Name: "b", Values: []float64{10, 20}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 6 {
		t.Fatalf("size: %d", s.Size())
	}
	seen := map[[2]float64]bool{}
	for id := 0; id < s.Size(); id++ {
		vals, err := s.Settings(id)
		if err != nil {
			t.Fatal(err)
		}
		seen[[2]float64{vals[0], vals[1]}] = true
	}
	if len(seen) != 6 {
		t.Fatalf("settings not unique: %d distinct", len(seen))
	}
	if _, err := s.Settings(-1); err == nil {
		t.Error("want error for negative id")
	}
	if _, err := s.Settings(6); err == nil {
		t.Error("want error for id out of range")
	}
}

func TestSpaceIndexRoundTrip(t *testing.T) {
	s, _ := NewSpace(
		Knob{Name: "a", Values: []float64{0, 1, 2, 3}},
		Knob{Name: "b", Values: []float64{0, 1, 2}},
		Knob{Name: "c", Values: []float64{0, 1}},
	)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 2; k++ {
				id, err := s.Index([]int{i, j, k})
				if err != nil {
					t.Fatal(err)
				}
				vals, _ := s.Settings(id)
				if vals[0] != float64(i) || vals[1] != float64(j) || vals[2] != float64(k) {
					t.Fatalf("round trip (%d,%d,%d) -> id %d -> %v", i, j, k, id, vals)
				}
			}
		}
	}
	if _, err := s.Index([]int{0}); err == nil {
		t.Error("want error for wrong arity")
	}
	if _, err := s.Index([]int{9, 0, 0}); err == nil {
		t.Error("want error for out-of-range value index")
	}
}

func TestMeasureComputesSpeedup(t *testing.T) {
	s, _ := NewSpace(Knob{Name: "trials", Values: []float64{100, 50, 25, 10}})
	prof, err := Measure(s, 0, func(id int) (float64, float64) {
		vals, _ := s.Settings(id)
		return vals[0], vals[0] / 100 // accuracy proportional to work
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSpeed := []float64{1, 2, 4, 10}
	for i, w := range wantSpeed {
		if math.Abs(prof.Points[i].Speedup-w) > 1e-12 {
			t.Fatalf("config %d speedup %v, want %v", i, prof.Points[i].Speedup, w)
		}
	}
}

func TestMeasureValidates(t *testing.T) {
	s, _ := NewSpace(Knob{Name: "k", Values: []float64{1, 2}})
	if _, err := Measure(s, 5, func(int) (float64, float64) { return 1, 1 }); err == nil {
		t.Error("want error for bad default config")
	}
	if _, err := Measure(s, 0, func(int) (float64, float64) { return 0, 1 }); err == nil {
		t.Error("want error for zero work")
	}
	bad := func(id int) (float64, float64) {
		if id == 1 {
			return -1, 1
		}
		return 1, 1
	}
	if _, err := Measure(s, 0, bad); err == nil {
		t.Error("want error for negative work in non-default config")
	}
}

func TestFrontierExtraction(t *testing.T) {
	prof := &Profile{Points: []Point{
		{Config: 0, Speedup: 1.0, Accuracy: 1.0},
		{Config: 1, Speedup: 2.0, Accuracy: 0.9},
		{Config: 2, Speedup: 1.5, Accuracy: 0.8}, // dominated by config 1
		{Config: 3, Speedup: 4.0, Accuracy: 0.7},
		{Config: 4, Speedup: 0.8, Accuracy: 0.95}, // dominated by config 0
	}}
	f, err := NewFrontier(prof)
	if err != nil {
		t.Fatal(err)
	}
	pts := f.Points()
	if len(pts) != 3 {
		t.Fatalf("frontier size: %d (%v)", len(pts), pts)
	}
	wantCfg := []int{0, 1, 3}
	for i, w := range wantCfg {
		if pts[i].Config != w {
			t.Fatalf("frontier[%d].Config = %d, want %d", i, pts[i].Config, w)
		}
	}
	if f.MaxSpeedup() != 4 || f.MinSpeedup() != 1 {
		t.Fatalf("speedup range: [%v, %v]", f.MinSpeedup(), f.MaxSpeedup())
	}
}

func TestFrontierEmptyProfile(t *testing.T) {
	if _, err := NewFrontier(nil); err == nil {
		t.Error("want error for nil profile")
	}
	if _, err := NewFrontier(&Profile{}); err == nil {
		t.Error("want error for empty profile")
	}
}

func TestForSpeedupEqn6(t *testing.T) {
	f, _ := NewFrontier(&Profile{Points: []Point{
		{Config: 0, Speedup: 1, Accuracy: 1},
		{Config: 1, Speedup: 2, Accuracy: 0.9},
		{Config: 2, Speedup: 4, Accuracy: 0.5},
	}})
	cases := []struct {
		s       float64
		wantCfg int
		wantOK  bool
	}{
		{0.5, 0, true}, // below min: full accuracy config
		{1, 0, true},
		{1.5, 1, true},
		{2, 1, true},
		{3.9, 2, true},
		{4, 2, true},
		{4.1, 2, false}, // infeasible: fastest config, flagged
	}
	for _, tc := range cases {
		pt, ok := f.ForSpeedup(tc.s)
		if pt.Config != tc.wantCfg || ok != tc.wantOK {
			t.Errorf("ForSpeedup(%v) = cfg %d ok %v, want cfg %d ok %v",
				tc.s, pt.Config, ok, tc.wantCfg, tc.wantOK)
		}
	}
}

func TestDominates(t *testing.T) {
	a := Point{Speedup: 2, Accuracy: 0.9}
	b := Point{Speedup: 1, Accuracy: 0.8}
	if !Dominates(a, b) || Dominates(b, a) {
		t.Fatal("dominance wrong for strictly better point")
	}
	if Dominates(a, a) {
		t.Fatal("a point must not dominate itself")
	}
	c := Point{Speedup: 3, Accuracy: 0.5}
	if Dominates(a, c) || Dominates(c, a) {
		t.Fatal("incomparable points must not dominate")
	}
}

// Property: no frontier point dominates another, every profiled point is
// dominated-or-equalled by some frontier point, and ForSpeedup returns the
// max-accuracy point among those meeting the demand.
func TestFrontierProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(n uint8) bool {
		count := int(n%40) + 1
		prof := &Profile{}
		for i := 0; i < count; i++ {
			prof.Points = append(prof.Points, Point{
				Config:   i,
				Speedup:  0.5 + rng.Float64()*9.5,
				Accuracy: rng.Float64(),
			})
		}
		fr, err := NewFrontier(prof)
		if err != nil {
			return false
		}
		pts := fr.Points()
		for i := range pts {
			for j := range pts {
				if i != j && Dominates(pts[i], pts[j]) {
					return false
				}
			}
		}
		for _, p := range prof.Points {
			covered := false
			for _, fp := range pts {
				if fp.Speedup >= p.Speedup && fp.Accuracy >= p.Accuracy {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		// Spot-check Eqn 6 against a linear scan.
		for trial := 0; trial < 5; trial++ {
			s := rng.Float64() * 11
			got, ok := fr.ForSpeedup(s)
			bestAcc := -1.0
			for _, p := range prof.Points {
				if p.Speedup >= s && p.Accuracy > bestAcc {
					bestAcc = p.Accuracy
				}
			}
			if bestAcc < 0 {
				if ok {
					return false
				}
			} else if !ok || math.Abs(got.Accuracy-bestAcc) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
