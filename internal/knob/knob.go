// Package knob is the PowerDial substrate (Hoffmann et al., ASPLOS'11): it
// turns an application's static parameters into dynamic knobs, enumerates
// the cross-product configuration space, profiles each configuration's
// speedup and accuracy on calibration inputs, and extracts the
// Pareto-optimal frontier of performance/accuracy trade-offs that
// JouleGuard's application accuracy optimiser searches (paper Eqn 6).
package knob

import (
	"fmt"
	"sort"
)

// Knob is one dynamically adjustable parameter with a discrete set of
// settings. Values carries the concrete parameter values in the order the
// application understands; the knob framework treats them opaquely.
type Knob struct {
	Name   string
	Values []float64
}

// Space is the cross-product of a set of knobs. Configurations are
// identified by a dense index in [0, Size()).
type Space struct {
	knobs []Knob
	size  int
}

// NewSpace builds a configuration space. Every knob must have at least one
// value.
func NewSpace(knobs ...Knob) (*Space, error) {
	if len(knobs) == 0 {
		return nil, fmt.Errorf("knob: space needs at least one knob")
	}
	size := 1
	for _, k := range knobs {
		if len(k.Values) == 0 {
			return nil, fmt.Errorf("knob: %q has no values", k.Name)
		}
		size *= len(k.Values)
	}
	return &Space{knobs: append([]Knob(nil), knobs...), size: size}, nil
}

// Size returns the number of configurations in the space.
func (s *Space) Size() int { return s.size }

// Knobs returns the knob definitions.
func (s *Space) Knobs() []Knob { return append([]Knob(nil), s.knobs...) }

// Settings decodes configuration id into one value per knob, in knob order.
func (s *Space) Settings(id int) ([]float64, error) {
	if id < 0 || id >= s.size {
		return nil, fmt.Errorf("knob: config %d out of range [0,%d)", id, s.size)
	}
	out := make([]float64, len(s.knobs))
	for i, k := range s.knobs {
		out[i] = k.Values[id%len(k.Values)]
		id /= len(k.Values)
	}
	return out, nil
}

// Index encodes per-knob value indices into a configuration id.
func (s *Space) Index(valueIdx []int) (int, error) {
	if len(valueIdx) != len(s.knobs) {
		return 0, fmt.Errorf("knob: got %d indices for %d knobs", len(valueIdx), len(s.knobs))
	}
	id := 0
	mult := 1
	for i, k := range s.knobs {
		if valueIdx[i] < 0 || valueIdx[i] >= len(k.Values) {
			return 0, fmt.Errorf("knob: %q index %d out of range", k.Name, valueIdx[i])
		}
		id += valueIdx[i] * mult
		mult *= len(k.Values)
	}
	return id, nil
}

// Point is one profiled configuration: its id in the Space, its speedup
// relative to the default configuration, and its accuracy (1 = full
// accuracy, following the paper's normalisation in Sec. 4.1).
type Point struct {
	Config   int
	Speedup  float64
	Accuracy float64
}

// Profile holds profiling results for every configuration of a space.
type Profile struct {
	Points []Point
}

// Measure profiles every configuration with the supplied evaluator, which
// returns the work performed (abstract operation count — lower is faster)
// and accuracy for one calibration run of configuration id. defaultConfig
// anchors speedup = 1.
func Measure(space *Space, defaultConfig int, eval func(id int) (work, accuracy float64)) (*Profile, error) {
	if defaultConfig < 0 || defaultConfig >= space.Size() {
		return nil, fmt.Errorf("knob: default config %d out of range", defaultConfig)
	}
	defWork, _ := eval(defaultConfig)
	if defWork <= 0 {
		return nil, fmt.Errorf("knob: default configuration reported non-positive work %v", defWork)
	}
	p := &Profile{Points: make([]Point, space.Size())}
	for id := 0; id < space.Size(); id++ {
		w, a := eval(id)
		if w <= 0 {
			return nil, fmt.Errorf("knob: config %d reported non-positive work %v", id, w)
		}
		p.Points[id] = Point{Config: id, Speedup: defWork / w, Accuracy: a}
	}
	return p, nil
}

// Frontier is the Pareto-optimal subset of a profile sorted by ascending
// speedup: no retained configuration is dominated (another configuration at
// least as fast and strictly more accurate, or faster and at least as
// accurate). Along the frontier, accuracy is non-increasing in speedup.
type Frontier struct {
	points []Point // ascending speedup, non-increasing accuracy
}

// NewFrontier extracts the Pareto frontier from profiled points. The
// returned frontier always contains at least one point (the best-accuracy
// configuration).
func NewFrontier(prof *Profile) (*Frontier, error) {
	if prof == nil || len(prof.Points) == 0 {
		return nil, fmt.Errorf("knob: empty profile")
	}
	pts := append([]Point(nil), prof.Points...)
	// Sort by descending accuracy, then descending speedup, so a linear
	// sweep retaining strictly increasing speedups yields the frontier.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Accuracy != pts[j].Accuracy {
			return pts[i].Accuracy > pts[j].Accuracy
		}
		return pts[i].Speedup > pts[j].Speedup
	})
	var front []Point
	bestSpeed := 0.0
	for _, pt := range pts {
		if pt.Speedup > bestSpeed {
			front = append(front, pt)
			bestSpeed = pt.Speedup
		}
	}
	// front is in descending accuracy = ascending speedup order already.
	sort.Slice(front, func(i, j int) bool { return front[i].Speedup < front[j].Speedup })
	return &Frontier{points: front}, nil
}

// Points returns the frontier points in ascending speedup order.
func (f *Frontier) Points() []Point { return append([]Point(nil), f.points...) }

// Len returns the number of frontier configurations.
func (f *Frontier) Len() int { return len(f.points) }

// MaxSpeedup returns the largest achievable speedup.
func (f *Frontier) MaxSpeedup() float64 { return f.points[len(f.points)-1].Speedup }

// MinSpeedup returns the smallest frontier speedup (usually ~1).
func (f *Frontier) MinSpeedup() float64 { return f.points[0].Speedup }

// ForSpeedup implements Eqn 6: the highest-accuracy configuration whose
// speedup meets or exceeds s. Because frontier accuracy is non-increasing
// in speedup, that is the first point with Speedup >= s, found by binary
// search (the implementation detail Sec. 5.1 credits for the runtime's low
// overhead). If s exceeds every frontier speedup the fastest configuration
// is returned along with ok = false, signalling an infeasible demand
// (Sec. 3.4.3).
func (f *Frontier) ForSpeedup(s float64) (Point, bool) {
	i := sort.Search(len(f.points), func(i int) bool { return f.points[i].Speedup >= s })
	if i == len(f.points) {
		return f.points[len(f.points)-1], false
	}
	return f.points[i], true
}

// SpeedupOf returns the speedup of the frontier point with the given
// configuration id, and whether the id is on the frontier. Callers use
// it to value feedback by the configuration that actually ran, which —
// when actuation is verified by readback — may differ from the one that
// was requested.
func (f *Frontier) SpeedupOf(config int) (float64, bool) {
	for _, p := range f.points {
		if p.Config == config {
			return p.Speedup, true
		}
	}
	return 0, false
}

// Dominates reports whether point a Pareto-dominates point b.
func Dominates(a, b Point) bool {
	if a.Speedup >= b.Speedup && a.Accuracy >= b.Accuracy {
		return a.Speedup > b.Speedup || a.Accuracy > b.Accuracy
	}
	return false
}
