package knob

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestProfileRoundTrip(t *testing.T) {
	prof := &Profile{Points: []Point{
		{Config: 0, Speedup: 1, Accuracy: 1},
		{Config: 3, Speedup: 2.5, Accuracy: 0.8},
	}}
	var buf bytes.Buffer
	if err := SaveProfile(&buf, "x264", prof); err != nil {
		t.Fatal(err)
	}
	app, got, err := LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if app != "x264" {
		t.Fatalf("app: %q", app)
	}
	if len(got.Points) != 2 || got.Points[1] != prof.Points[1] {
		t.Fatalf("points: %+v", got.Points)
	}
	// The loaded profile must feed the frontier machinery unchanged.
	f, err := NewFrontier(got)
	if err != nil {
		t.Fatal(err)
	}
	if f.MaxSpeedup() != 2.5 {
		t.Fatalf("frontier from loaded profile: %v", f.MaxSpeedup())
	}
}

func TestSaveProfileRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveProfile(&buf, "a", nil); err == nil {
		t.Error("want error for nil profile")
	}
	if err := SaveProfile(&buf, "a", &Profile{}); err == nil {
		t.Error("want error for empty profile")
	}
}

func TestLoadProfileValidates(t *testing.T) {
	cases := map[string]string{
		"garbage":      "{not json",
		"bad version":  `{"version": 9, "points": [{"Config":0,"Speedup":1,"Accuracy":1}]}`,
		"no points":    `{"version": 1, "points": []}`,
		"bad speedup":  `{"version": 1, "points": [{"Config":0,"Speedup":0,"Accuracy":1}]}`,
		"bad accuracy": `{"version": 1, "points": [{"Config":0,"Speedup":1,"Accuracy":2}]}`,
		"bad config":   `{"version": 1, "points": [{"Config":-1,"Speedup":1,"Accuracy":1}]}`,
	}
	for name, raw := range cases {
		if _, _, err := LoadProfile(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestLoadProfileRejectsNaN(t *testing.T) {
	// JSON cannot encode NaN, but a hand-edited file could hold absurd
	// magnitudes; ensure the validator treats Inf-like values as invalid.
	raw := `{"version": 1, "points": [{"Config":0,"Speedup":1e999,"Accuracy":0.5}]}`
	if _, _, err := LoadProfile(strings.NewReader(raw)); err == nil {
		t.Error("want error for overflowing speedup")
	}
	_ = math.Inf // keep the math import honest if cases change
}
