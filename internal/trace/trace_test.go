package trace

import (
	"math"
	"strings"
	"testing"
)

func TestCSVOutput(t *testing.T) {
	set := NewSet("iter")
	a := set.Add("energy")
	b := set.Add("accuracy")
	a.Append(1.5)
	a.Append(2.5)
	b.Append(0.9)
	var sb strings.Builder
	if err := set.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "iter,energy,accuracy" {
		t.Fatalf("header: %q", lines[0])
	}
	if lines[1] != "0,1.5,0.9" {
		t.Fatalf("row 0: %q", lines[1])
	}
	if lines[2] != "1,2.5," {
		t.Fatalf("row 1 (ragged): %q", lines[2])
	}
	if set.Len() != 2 {
		t.Fatalf("len: %d", set.Len())
	}
}

func TestASCIIChartRendersShape(t *testing.T) {
	ser := &Series{Name: "ramp"}
	for i := 0; i < 100; i++ {
		ser.Append(float64(i))
	}
	out := ASCIIChart(ser, 40, 8)
	if out == "" {
		t.Fatal("empty chart")
	}
	if !strings.Contains(out, "ramp") || !strings.Contains(out, "*") {
		t.Fatalf("chart missing elements:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 { // title + 8 rows + axis
		t.Fatalf("chart rows: %d", len(lines))
	}
	// A ramp should place early stars low and late stars high. (Bucket
	// averaging can leave the extreme rows unused, so compare the top row
	// against the lowest row that has a star.)
	topRow := lines[1]
	bottomRow := ""
	for i := 8; i > 1; i-- {
		if strings.Contains(lines[i], "*") {
			bottomRow = lines[i]
			break
		}
	}
	if !strings.Contains(topRow, "*") || bottomRow == "" {
		t.Fatalf("ramp should span rows:\n%s", out)
	}
	if strings.Index(topRow, "*") < strings.Index(bottomRow, "*") {
		t.Fatalf("ramp orientation wrong:\n%s", out)
	}
}

func TestASCIIChartDegenerate(t *testing.T) {
	if ASCIIChart(&Series{Name: "empty"}, 10, 5) != "" {
		t.Fatal("empty series should render nothing")
	}
	flat := &Series{Name: "flat", Values: []float64{2, 2, 2}}
	if out := ASCIIChart(flat, 10, 4); out == "" {
		t.Fatal("flat series should still render")
	}
	nan := &Series{Name: "nan", Values: []float64{math.NaN(), math.Inf(1)}}
	if out := ASCIIChart(nan, 10, 4); out != "" {
		t.Fatal("all-invalid series should render nothing")
	}
	if ASCIIChart(flat, 1, 1) != "" {
		t.Fatal("tiny canvas should render nothing")
	}
}

// TestASCIIChartConstantSeriesRegression pins the guard for a constant
// series: hi == lo would make the row projection divide by zero, so the
// chart widens the range by one and must still draw every bucket's star
// on a single row with the true value in the annotation.
func TestASCIIChartConstantSeriesRegression(t *testing.T) {
	ser := &Series{Name: "flatline", Values: []float64{3.5, 3.5, 3.5, 3.5, 3.5, 3.5}}
	out := ASCIIChart(ser, 12, 5)
	if out == "" {
		t.Fatal("constant series must render")
	}
	if !strings.Contains(out, "[3.5 .. 3.5]") {
		t.Fatalf("annotation should show the constant level:\n%s", out)
	}
	starRows := 0
	for _, line := range strings.Split(out, "\n") {
		if n := strings.Count(line, "*"); n > 0 {
			starRows++
			if n != 12 {
				t.Fatalf("constant series should fill its row (%d stars):\n%s", n, out)
			}
		}
	}
	if starRows != 1 {
		t.Fatalf("constant series should occupy exactly one row, got %d:\n%s", starRows, out)
	}
}

// TestASCIIChartSparseNaNRegression pins the guard for a series where
// whole downsample buckets are non-finite: those columns stay blank,
// finite columns still render, and the annotated range ignores the
// non-finite values entirely.
func TestASCIIChartSparseNaNRegression(t *testing.T) {
	ser := &Series{Name: "holey"}
	for i := 0; i < 40; i++ {
		if i/10%2 == 0 {
			ser.Append(math.NaN())
		} else {
			ser.Append(float64(i))
		}
	}
	out := ASCIIChart(ser, 8, 4)
	if out == "" {
		t.Fatal("series with finite values must render")
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("finite buckets should draw stars:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("NaN must not leak into the chart:\n%s", out)
	}
	if !strings.Contains(out, "[10 .. 39]") {
		t.Fatalf("range should cover only finite samples:\n%s", out)
	}
}
