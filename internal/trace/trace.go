// Package trace records per-iteration time series from experiment runs and
// renders them as CSV (for plotting) or quick ASCII charts (for the cmd
// tools' terminal output).
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named time series.
type Series struct {
	Name   string
	Values []float64
}

// Set is a collection of aligned series (same x axis).
type Set struct {
	XName  string
	Series []*Series
}

// NewSet creates a trace set with the given x-axis label.
func NewSet(xName string) *Set { return &Set{XName: xName} }

// Add creates and registers a new series.
func (s *Set) Add(name string) *Series {
	ser := &Series{Name: name}
	s.Series = append(s.Series, ser)
	return ser
}

// Append adds a value to a series.
func (ser *Series) Append(v float64) { ser.Values = append(ser.Values, v) }

// Len returns the longest series length.
func (s *Set) Len() int {
	n := 0
	for _, ser := range s.Series {
		if len(ser.Values) > n {
			n = len(ser.Values)
		}
	}
	return n
}

// WriteCSV emits the set as CSV with the x axis in the first column.
func (s *Set) WriteCSV(w io.Writer) error {
	cols := make([]string, 0, len(s.Series)+1)
	cols = append(cols, s.XName)
	for _, ser := range s.Series {
		cols = append(cols, ser.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := 0; i < s.Len(); i++ {
		row := make([]string, 0, len(cols))
		row = append(row, fmt.Sprintf("%d", i))
		for _, ser := range s.Series {
			if i < len(ser.Values) {
				row = append(row, fmt.Sprintf("%g", ser.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIChart renders a series as a fixed-size ASCII chart with min/max
// annotations — enough to eyeball convergence in a terminal.
func ASCIIChart(ser *Series, width, height int) string {
	if len(ser.Values) == 0 || width < 2 || height < 2 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range ser.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return ""
	}
	// A constant series would divide by zero in the row projection below;
	// widen the projection range only — the annotation keeps the true
	// [lo .. hi] so a flatline reads as the level it actually held.
	trueLo, trueHi := lo, hi
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	n := len(ser.Values)
	for c := 0; c < width; c++ {
		// Downsample by averaging the bucket.
		start := c * n / width
		end := (c + 1) * n / width
		if end <= start {
			end = start + 1
		}
		if end > n {
			end = n
		}
		var sum float64
		var cnt int
		for i := start; i < end; i++ {
			v := ser.Values[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			sum += v
			cnt++
		}
		if cnt == 0 {
			continue
		}
		v := sum / float64(cnt)
		row := int((hi - v) / (hi - lo) * float64(height-1))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.4g .. %.4g]\n", ser.Name, trueLo, trueHi)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	return b.String()
}
