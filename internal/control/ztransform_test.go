package control

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"
	"testing/quick"
)

func TestPolyTrimsTrailingZeros(t *testing.T) {
	p := NewPoly(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Fatalf("degree: %d", p.Degree())
	}
}

func TestPolyEval(t *testing.T) {
	p := NewPoly(1, -3, 2) // 2z^2 - 3z + 1 = (2z-1)(z-1)
	if got := p.Eval(complex(1, 0)); got != 0 {
		t.Fatalf("p(1) = %v", got)
	}
	if got := p.Eval(complex(0.5, 0)); cmplx.Abs(got) > 1e-12 {
		t.Fatalf("p(0.5) = %v", got)
	}
	if got := p.Eval(complex(2, 0)); got != complex(3, 0) {
		t.Fatalf("p(2) = %v", got)
	}
}

func TestPolyMulAddScale(t *testing.T) {
	a := NewPoly(1, 1)  // 1 + z
	b := NewPoly(-1, 1) // -1 + z
	prod := a.Mul(b)    // z^2 - 1
	want := []float64{-1, 0, 1}
	for i, c := range want {
		if prod.Coeffs[i] != c {
			t.Fatalf("Mul: got %v, want %v", prod.Coeffs, want)
		}
	}
	sum := a.Add(b) // 2z
	if sum.Degree() != 1 || sum.Coeffs[0] != 0 || sum.Coeffs[1] != 2 {
		t.Fatalf("Add: got %v", sum.Coeffs)
	}
	sc := a.Scale(3)
	if sc.Coeffs[0] != 3 || sc.Coeffs[1] != 3 {
		t.Fatalf("Scale: got %v", sc.Coeffs)
	}
}

func sortedRealRoots(p Poly) []float64 {
	roots := p.Roots()
	out := make([]float64, 0, len(roots))
	for _, r := range roots {
		out = append(out, real(r))
	}
	sort.Float64s(out)
	return out
}

func TestRootsLinearQuadratic(t *testing.T) {
	got := sortedRealRoots(NewPoly(-6, 2)) // 2z - 6 -> z = 3
	if len(got) != 1 || math.Abs(got[0]-3) > 1e-12 {
		t.Fatalf("linear roots: %v", got)
	}
	got = sortedRealRoots(NewPoly(6, -5, 1)) // (z-2)(z-3)
	if len(got) != 2 || math.Abs(got[0]-2) > 1e-9 || math.Abs(got[1]-3) > 1e-9 {
		t.Fatalf("quadratic roots: %v", got)
	}
}

func TestRootsHighDegree(t *testing.T) {
	// (z-1)(z-2)(z-3)(z+0.5) = expand:
	p := NewPoly(-1, 2).Mul(NewPoly(-2, 1)).Mul(NewPoly(-3, 1)).Mul(NewPoly(0.5, 1))
	// Note first factor NewPoly(-1,2) = 2z-1 -> root 0.5; adjust expectations.
	want := []float64{-0.5, 0.5, 2, 3}
	got := sortedRealRoots(p)
	if len(got) != 4 {
		t.Fatalf("root count: %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("roots: got %v, want %v", got, want)
		}
	}
}

func TestRootsAtZero(t *testing.T) {
	p := NewPoly(0, 0, 1) // z^2
	roots := p.Roots()
	if len(roots) != 2 {
		t.Fatalf("z^2 roots: %v", roots)
	}
	for _, r := range roots {
		if cmplx.Abs(r) > 1e-12 {
			t.Fatalf("z^2 root not at origin: %v", r)
		}
	}
}

// Property: every value returned by Roots really is a root.
func TestRootsAreRootsProperty(t *testing.T) {
	f := func(c0, c1, c2, c3 float64) bool {
		clampc := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 10)
		}
		p := NewPoly(clampc(c0), clampc(c1), clampc(c2), clampc(c3)+0.5)
		maxc := 0.0
		for _, c := range p.Coeffs {
			if a := math.Abs(c); a > maxc {
				maxc = a
			}
		}
		for _, r := range p.Roots() {
			// Scale tolerance with magnitude of the root and coefficients.
			tol := 1e-5 * (1 + maxc) * math.Pow(1+cmplx.Abs(r), float64(p.Degree()))
			if cmplx.Abs(p.Eval(r)) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClosedLoopMatchesEqn7(t *testing.T) {
	// Building F from C(z) and A(z) explicitly must equal the algebraic
	// closed form (1-pole)/(z-pole) of Eqn 7.
	for _, pole := range []float64{0, 0.3, 0.9} {
		for _, r := range []float64{0.5, 10, 3100} {
			c := PIController(pole)
			a := ApplicationPlant(r)
			// The controller gain in Eqn 5 is normalised by rbestsys, so the
			// composed loop uses C with gain scaled by 1/r.
			c.Num = c.Num.Scale(1 / r)
			f := c.Series(a).Feedback()
			want := ClosedLoop(pole, r, 1)
			for _, z := range []complex128{complex(0.5, 0.5), complex(2, -1), complex(-0.3, 0)} {
				g1 := f.Eval(z)
				g2 := want.Eval(z)
				if cmplx.Abs(g1-g2) > 1e-9*(1+cmplx.Abs(g2)) {
					t.Fatalf("pole=%v r=%v z=%v: composed %v, closed form %v", pole, r, z, g1, g2)
				}
			}
		}
	}
}

func TestClosedLoopStabilityRegion(t *testing.T) {
	// Sec. 3.4.2 / Eqn 9: stable iff 0 < delta < 2/(1-pole).
	cases := []struct {
		pole, delta float64
		stable      bool
	}{
		{0, 1, true},
		{0, 1.99, true},
		{0, 2.01, false},
		{0.5, 3.9, true},
		{0.5, 4.1, false},
		{0.9, 19, true},
		{0.9, 21, false},
	}
	for _, tc := range cases {
		f := ClosedLoop(tc.pole, 100, tc.delta)
		if got := f.Stable(); got != tc.stable {
			t.Errorf("pole=%v delta=%v: stable=%v, want %v", tc.pole, tc.delta, got, tc.stable)
		}
	}
}

func TestClosedLoopConvergent(t *testing.T) {
	// Convergence criterion F(1) = 1 (Sec. 3.4.1) holds for any pole and
	// even under model error delta (the integrator guarantees zero
	// steady-state error whenever the loop is stable).
	for _, pole := range []float64{0, 0.25, 0.8} {
		for _, delta := range []float64{0.5, 1, 1.8} {
			f := ClosedLoop(pole, 42, delta)
			if g := f.DCGain(); math.Abs(g-1) > 1e-12 {
				t.Errorf("pole=%v delta=%v: DC gain %v", pole, delta, g)
			}
		}
	}
}

func TestStepResponseFirstOrder(t *testing.T) {
	// F(z) = (1-p)/(z-p) has step response y(k) = 1 - p^(k) for k >= 1
	// (one step of pure delay then geometric approach).
	p := 0.5
	f := ClosedLoop(p, 1, 1)
	resp := f.StepResponse(10)
	if resp[0] != 0 {
		t.Fatalf("y(0) = %v, want 0 (one-step delay)", resp[0])
	}
	for k := 1; k < 10; k++ {
		want := 1 - math.Pow(p, float64(k))
		if math.Abs(resp[k]-want) > 1e-9 {
			t.Fatalf("y(%d) = %v, want %v", k, resp[k], want)
		}
	}
}

func TestStepResponseDeadbeat(t *testing.T) {
	f := ClosedLoop(0, 10, 1)
	resp := f.StepResponse(5)
	for k := 1; k < 5; k++ {
		if math.Abs(resp[k]-1) > 1e-12 {
			t.Fatalf("deadbeat y(%d) = %v", k, resp[k])
		}
	}
}

func TestStepResponseDivergesWhenUnstable(t *testing.T) {
	f := ClosedLoop(0, 1, 3) // delta=3 > 2: unstable
	resp := f.StepResponse(60)
	if math.Abs(resp[59]-1) < 10 {
		t.Fatalf("unstable loop did not diverge: %v", resp[59])
	}
}

func TestSettlingTime(t *testing.T) {
	fast := ClosedLoop(0.1, 1, 1)
	slow := ClosedLoop(0.95, 1, 1)
	tf := SettlingTime(fast.StepResponse(400), 0.01)
	ts := SettlingTime(slow.StepResponse(400), 0.01)
	if tf < 0 || ts < 0 {
		t.Fatalf("settling not found: fast=%d slow=%d", tf, ts)
	}
	if tf >= ts {
		t.Fatalf("fast pole settles slower: fast=%d slow=%d", tf, ts)
	}
	if SettlingTime([]float64{0, 0, 0}, 0.01) != -1 {
		t.Fatal("SettlingTime on flat-zero should be -1")
	}
}

func TestPIControllerShape(t *testing.T) {
	c := PIController(0.2)
	// C(z) = 0.8 z / (z-1): a pole at z=1 (the integrator).
	poles := c.Poles()
	if len(poles) != 1 || cmplx.Abs(poles[0]-1) > 1e-12 {
		t.Fatalf("integrator pole: %v", poles)
	}
}

func TestNewTransferFunctionRejectsZeroDen(t *testing.T) {
	if _, err := NewTransferFunction(NewPoly(1), NewPoly(0)); err == nil {
		t.Fatal("want error for zero denominator")
	}
	if _, err := NewTransferFunction(NewPoly(1), NewPoly(1, 1)); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestTransferFunctionString(t *testing.T) {
	f := ClosedLoop(0.5, 1, 1)
	if f.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: the adaptive pole rule never produces a divergent closed loop
// for the measured delta: every closed-loop pole satisfies |z| <= 1. (Eqn 11
// places the loop exactly on the stability boundary when delta > 2; strict
// asymptotic stability is then recovered by the estimator driving delta to
// zero, which the runtime-level tests exercise.)
func TestAdaptivePoleNeverDivergesProperty(t *testing.T) {
	f := func(raw float64) bool {
		delta := math.Abs(raw)
		if delta == 0 || math.IsInf(delta, 0) || math.IsNaN(delta) || delta > 1e6 {
			return true
		}
		pole := PoleForDelta(delta)
		for _, p := range ClosedLoop(pole, 1, delta).Poles() {
			if cmplx.Abs(p) > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
