package control

import (
	"math"
	"testing"
)

func TestAnalyzeStepFirstOrder(t *testing.T) {
	// A first-order loop (pole 0.5) is monotone: no overshoot, small
	// steady-state error, finite rise and settling times.
	m := AnalyzeStep(ClosedLoop(0.5, 1, 1).StepResponse(100))
	if m.Overshoot != 0 {
		t.Fatalf("overshoot: %v", m.Overshoot)
	}
	if m.RiseTime < 1 || m.RiseTime > 10 {
		t.Fatalf("rise time: %d", m.RiseTime)
	}
	if m.Settling < 0 {
		t.Fatal("never settled")
	}
	if m.SteadyStateError > 1e-9 {
		t.Fatalf("steady-state error: %v", m.SteadyStateError)
	}
	if m.Diverged {
		t.Fatal("flagged divergent")
	}
}

func TestAnalyzeStepOscillatoryOvershoot(t *testing.T) {
	// delta just inside the bound: pole at z = 1-g with g in (1,2) is
	// negative -> alternating response that overshoots.
	m := AnalyzeStep(ClosedLoop(0, 1, 1.8).StepResponse(200))
	if m.Overshoot <= 0 {
		t.Fatalf("expected overshoot, got %v", m.Overshoot)
	}
	if m.Diverged {
		t.Fatal("stable loop flagged divergent")
	}
	if m.SteadyStateError > 1e-6 {
		t.Fatalf("steady-state error: %v", m.SteadyStateError)
	}
}

func TestAnalyzeStepDivergence(t *testing.T) {
	m := AnalyzeStep(ClosedLoop(0, 1, 3).StepResponse(120))
	if !m.Diverged {
		t.Fatal("unstable loop not flagged")
	}
}

func TestAnalyzeStepEmpty(t *testing.T) {
	m := AnalyzeStep(nil)
	if m.RiseTime != -1 || m.Settling != -1 {
		t.Fatalf("empty response metrics: %+v", m)
	}
}

func TestDesignPoleMeetsSpec(t *testing.T) {
	for _, steps := range []int{2, 5, 20, 100} {
		pole := DesignPole(steps)
		if pole < 0 || pole >= 1 {
			t.Fatalf("steps=%d: pole %v out of range", steps, pole)
		}
		resp := ClosedLoop(pole, 1, 1).StepResponse(steps * 4)
		m := AnalyzeStep(resp)
		if m.Settling < 0 || m.Settling > steps+1 {
			t.Fatalf("steps=%d pole=%v: settled at %d", steps, pole, m.Settling)
		}
	}
	if DesignPole(1) != 0 || DesignPole(-3) != 0 {
		t.Fatal("degenerate specs must give the deadbeat pole")
	}
}

func TestRobustnessMargin(t *testing.T) {
	// pole 0.1 tolerates delta up to ~2.22 (the paper's example); at
	// delta 1 the margin is ~2.2x, at delta 3 it is below 1 (unstable).
	if m := RobustnessMargin(0.1, 1); math.Abs(m-2/0.9) > 1e-12 {
		t.Fatalf("margin: %v", m)
	}
	if m := RobustnessMargin(0.1, 3); m >= 1 {
		t.Fatalf("margin at delta 3 should be <1: %v", m)
	}
	if !math.IsInf(RobustnessMargin(0.5, 0), 1) {
		t.Fatal("zero delta margin should be infinite")
	}
}

func TestFrequencyResponseFirstOrder(t *testing.T) {
	// F(z) = (1-p)/(z-p): DC gain 1, low-pass (monotone decreasing
	// magnitude), Nyquist gain (1-p)/(1+p).
	p := 0.6
	resp := FrequencyResponse(ClosedLoop(p, 1, 1), 64)
	if len(resp) != 64 {
		t.Fatalf("points: %d", len(resp))
	}
	if math.Abs(resp[0].Magnitude-1) > 1e-9 {
		t.Fatalf("DC magnitude: %v", resp[0].Magnitude)
	}
	for i := 1; i < len(resp); i++ {
		if resp[i].Magnitude > resp[i-1].Magnitude+1e-9 {
			t.Fatalf("first-order loop must be low-pass; rose at %d", i)
		}
	}
	nyq := resp[len(resp)-1].Magnitude
	want := (1 - p) / (1 + p)
	if math.Abs(nyq-want) > 1e-9 {
		t.Fatalf("Nyquist magnitude %v, want %v", nyq, want)
	}
	// A slower pole filters noise harder: smaller Nyquist gain.
	slower := FrequencyResponse(ClosedLoop(0.9, 1, 1), 64)
	if slower[63].Magnitude >= nyq {
		t.Fatal("higher pole should attenuate high frequencies more")
	}
}

func TestFrequencyResponseDegenerate(t *testing.T) {
	resp := FrequencyResponse(ClosedLoop(0.5, 1, 1), 1)
	if len(resp) != 2 {
		t.Fatalf("n clamp: %d", len(resp))
	}
}

// The margin predicts actual loop behaviour: margin > 1 iff stable.
func TestMarginPredictsStability(t *testing.T) {
	for _, pole := range []float64{0, 0.3, 0.7} {
		for _, delta := range []float64{0.5, 1.5, 2.5, 5, 9} {
			margin := RobustnessMargin(pole, delta)
			stable := ClosedLoop(pole, 1, delta).Stable()
			if (margin > 1) != stable {
				t.Errorf("pole=%v delta=%v: margin %v but stable=%v", pole, delta, margin, stable)
			}
		}
	}
}
