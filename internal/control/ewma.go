// Package control implements the control-theoretic machinery JouleGuard is
// built on: exponentially weighted moving-average estimators (paper Eqn 1),
// the proportional-integral speedup controller with adaptive pole placement
// (Eqns 5, 10 and 11), and Z-domain analysis tools used to verify the formal
// stability and robustness guarantees of Sec. 3.4 numerically.
package control

import (
	"errors"
	"fmt"
	"math"
)

// DefaultAlpha is the EWMA gain the paper selects after sweeping all
// applications and systems (Sec. 3.2): "We use alpha = .85".
const DefaultAlpha = 0.85

// EWMA is an exponentially weighted moving average of a scalar signal,
// implementing paper Eqn 1:
//
//	v(t) = (1-alpha) * v(t-1) + alpha * v(t)
//
// Note the paper's convention: alpha weighs the *new* observation, so large
// alpha tracks quickly and small alpha smooths heavily. The zero value is
// not ready for use; construct with NewEWMA.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA with the given gain. The gain must lie in (0, 1].
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("control: EWMA alpha %v outside (0, 1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// MustEWMA is NewEWMA for statically known gains; it panics on a bad gain.
func MustEWMA(alpha float64) *EWMA {
	e, err := NewEWMA(alpha)
	if err != nil {
		panic(err)
	}
	return e
}

// Observe folds a new measurement into the average and returns the updated
// estimate. The first observation primes the filter (the paper initialises
// estimates from priors instead; see Prime).
func (e *EWMA) Observe(x float64) float64 {
	if !e.primed {
		e.value = x
		e.primed = true
		return e.value
	}
	e.value = (1-e.alpha)*e.value + e.alpha*x
	return e.value
}

// Prime seeds the filter with an a-priori estimate, as JouleGuard does with
// its linear-performance / cubic-power initialisation (Sec. 3.2). Subsequent
// observations blend into this prior rather than replacing it.
func (e *EWMA) Prime(x float64) {
	e.value = x
	e.primed = true
}

// Value returns the current estimate (the prior if nothing was observed yet).
func (e *EWMA) Value() float64 { return e.value }

// Primed reports whether the filter holds any estimate at all.
func (e *EWMA) Primed() bool { return e.primed }

// Alpha returns the filter gain.
func (e *EWMA) Alpha() float64 { return e.alpha }

// ErrNotPrimed is returned by estimator helpers that need a primed filter.
var ErrNotPrimed = errors.New("control: estimator not primed")

// RatePowerEstimate couples the two per-configuration filters JouleGuard
// keeps for every system configuration: computation rate r and power p
// (Eqn 1). Efficiency is their ratio r/p, the bandit reward of Sec. 3.2.
type RatePowerEstimate struct {
	Rate  *EWMA
	Power *EWMA
}

// NewRatePowerEstimate builds the filter pair with a shared gain and primes
// both from the supplied priors.
func NewRatePowerEstimate(alpha, ratePrior, powerPrior float64) (*RatePowerEstimate, error) {
	r, err := NewEWMA(alpha)
	if err != nil {
		return nil, err
	}
	p, err := NewEWMA(alpha)
	if err != nil {
		return nil, err
	}
	r.Prime(ratePrior)
	p.Prime(powerPrior)
	return &RatePowerEstimate{Rate: r, Power: p}, nil
}

// Observe folds one (rate, power) measurement into the pair.
func (rp *RatePowerEstimate) Observe(rate, power float64) {
	rp.Rate.Observe(rate)
	rp.Power.Observe(power)
}

// Efficiency returns the estimated energy efficiency r/p. A non-positive
// power estimate yields zero efficiency rather than an infinity so that the
// bandit's arg-max stays well defined.
func (rp *RatePowerEstimate) Efficiency() float64 {
	p := rp.Power.Value()
	if p <= 0 {
		return 0
	}
	return rp.Rate.Value() / p
}
