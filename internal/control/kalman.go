package control

import "math"

// Kalman1D is a scalar Kalman filter tracking a slowly varying quantity
// (e.g. an application's base computation rate) through noisy observations.
// The paper's related-work section (Sec. 6.4) points to Kalman-based
// adaptive resource provisioning [28, 29]; we include the filter both as an
// optional estimator for the SEO (ablation: EWMA vs Kalman) and as a
// building block for users who embed the runtime in noisier environments.
//
// Model:
//
//	x(t) = x(t-1) + w,   w ~ N(0, Q)   (random-walk state)
//	z(t) = x(t)   + v,   v ~ N(0, R)   (noisy measurement)
type Kalman1D struct {
	x float64 // state estimate
	p float64 // estimate variance
	q float64 // process noise variance
	r float64 // measurement noise variance
	k float64 // last Kalman gain, for observability
	n int     // observations folded in
}

// NewKalman1D returns a filter with the given initial state/variance and
// noise parameters. Q and R must be positive.
func NewKalman1D(x0, p0, q, r float64) *Kalman1D {
	if q <= 0 {
		q = 1e-9
	}
	if r <= 0 {
		r = 1e-9
	}
	if p0 <= 0 {
		p0 = 1
	}
	return &Kalman1D{x: x0, p: p0, q: q, r: r}
}

// Observe folds one measurement into the filter and returns the updated
// state estimate.
func (f *Kalman1D) Observe(z float64) float64 {
	if math.IsNaN(z) || math.IsInf(z, 0) {
		return f.x
	}
	// Predict.
	f.p += f.q
	// Update.
	f.k = f.p / (f.p + f.r)
	f.x += f.k * (z - f.x)
	f.p *= 1 - f.k
	f.n++
	return f.x
}

// Value returns the current state estimate.
func (f *Kalman1D) Value() float64 { return f.x }

// Variance returns the current estimate variance.
func (f *Kalman1D) Variance() float64 { return f.p }

// Gain returns the Kalman gain applied at the last update.
func (f *Kalman1D) Gain() float64 { return f.k }

// Count returns how many observations the filter has absorbed.
func (f *Kalman1D) Count() int { return f.n }
