package control

import "testing"

func BenchmarkControllerStep(b *testing.B) {
	c := NewSpeedupController(WithSpeedupBounds(1, 10))
	for i := 0; i < b.N; i++ {
		c.Step(100, 95, 50)
	}
}

func BenchmarkAdaptPole(b *testing.B) {
	c := NewSpeedupController()
	for i := 0; i < b.N; i++ {
		c.AdaptPole(123.4, 100)
	}
}

func BenchmarkEWMAObserve(b *testing.B) {
	e := MustEWMA(DefaultAlpha)
	e.Prime(1)
	for i := 0; i < b.N; i++ {
		e.Observe(float64(i % 100))
	}
}

func BenchmarkRootsDegree8(b *testing.B) {
	p := NewPoly(1, -2, 3, -4, 5, -6, 7, -8, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Roots()
	}
}

func BenchmarkStepResponse(b *testing.B) {
	f := ClosedLoop(0.5, 1, 1)
	for i := 0; i < b.N; i++ {
		f.StepResponse(100)
	}
}
