package control

import (
	"fmt"
	"math"

	"jouleguard/internal/telemetry"
)

// SpeedupController is JouleGuard's proportional-integral controller
// (Sec. 3.3). It converts the error between required and measured
// performance into an application speedup signal:
//
//	s(t) = s(t-1) + (1 - pole(t)) * error(t) / rbestsys(t)    (Eqn 5)
//
// where error(t) = rtarget(t) - r(t) and rbestsys(t) is the learner's
// current estimate of the performance of the most energy-efficient system
// configuration. The pole adapts to the learner's model error (Eqns 10-11),
// which is the mechanism that lets JouleGuard couple a learning system and a
// control system without the oscillation shown in Fig. 1.
type SpeedupController struct {
	speedup  float64 // s(t-1), the integrator state
	pole     float64 // pole(t), updated via AdaptPole or set via SetPole
	minS     float64 // lower clamp for the speedup signal
	maxS     float64 // upper clamp for the speedup signal
	adaptive bool    // whether AdaptPole updates are applied
	lastErr  float64 // most recent error, for observability
	lastDelt float64 // most recent multiplicative model error delta(t)

	sink telemetry.Sink // per-step telemetry; Nop when not instrumented
}

// ControllerOption configures a SpeedupController.
type ControllerOption func(*SpeedupController)

// WithSpeedupBounds clamps the control signal to [min, max]. JouleGuard
// clamps to the application's achievable speedup range: below 1 there is
// nothing to slow down for (the energy goal is exceeded with full accuracy),
// and above the frontier maximum the goal is infeasible (Sec. 3.4.3).
func WithSpeedupBounds(min, max float64) ControllerOption {
	return func(c *SpeedupController) { c.minS, c.maxS = min, max }
}

// WithFixedPole pins the pole and disables adaptation; used by the
// uncoordinated baseline (Sec. 2.3) and the pole ablation.
func WithFixedPole(pole float64) ControllerOption {
	return func(c *SpeedupController) { c.pole, c.adaptive = pole, false }
}

// WithInitialSpeedup seeds the integrator. The default of 1 means "no
// application-level approximation yet".
func WithInitialSpeedup(s float64) ControllerOption {
	return func(c *SpeedupController) { c.speedup = s }
}

// WithSink streams every control step into a telemetry sink.
func WithSink(s telemetry.Sink) ControllerOption {
	return func(c *SpeedupController) { c.sink = telemetry.OrNop(s) }
}

// SetSink swaps the telemetry sink after construction (nil = no-op sink).
// The governor daemon replays snapshot logs through a silent sink and
// installs the live one once the restored state is current.
func (c *SpeedupController) SetSink(s telemetry.Sink) { c.sink = telemetry.OrNop(s) }

// NewSpeedupController returns a controller with state s(0)=1, pole 0 (the
// deadbeat, most aggressive setting) and adaptation enabled.
func NewSpeedupController(opts ...ControllerOption) *SpeedupController {
	c := &SpeedupController{speedup: 1, minS: 1, maxS: math.Inf(1), adaptive: true, sink: telemetry.Nop{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// AdaptPole implements the adaptive pole placement of Sec. 3.4.2. measured
// is the performance r(t) observed this iteration and estimated is the
// learner's previous estimate for the configuration the system was actually
// in. The multiplicative model error is
//
//	delta(t) = | measured/estimated - 1 |                     (Eqn 10)
//
// and the pole is
//
//	pole(t) = 1 - 2/delta(t)   if delta(t) > 2
//	pole(t) = 0                otherwise                      (Eqn 11)
//
// guaranteeing 0 < delta < 2/(1-pole) (Eqn 9), the stability condition of
// the closed loop in Eqn 8. When the learner is wildly wrong the pole
// approaches 1 and the controller all but freezes; when the models are good
// the pole is 0 and the controller is deadbeat.
func (c *SpeedupController) AdaptPole(measured, estimated float64) {
	if !c.adaptive {
		return
	}
	if estimated <= 0 || math.IsNaN(measured) || math.IsNaN(estimated) {
		// No usable model: be maximally conservative this round.
		c.pole = 0.99
		c.lastDelt = math.Inf(1)
		return
	}
	delta := math.Abs(measured/estimated - 1)
	c.lastDelt = delta
	c.pole = PoleForDelta(delta)
}

// maxPole caps the adaptive pole strictly below 1: a pole of exactly 1 would
// freeze the controller forever, and floating-point round-off reaches 1 for
// astronomically large deltas.
const maxPole = 1 - 1e-9

// Step advances the control law one iteration. target and measured are the
// required and observed performance; rbestsys is the estimated performance
// of the chosen system configuration, which scales the integral gain (the
// plant gain in Eqn 7 is rbestsys, so dividing by it normalises the loop
// gain to 1-pole). Returns the new speedup signal, clamped to the
// configured bounds.
func (c *SpeedupController) Step(target, measured, rbestsys float64) float64 {
	if rbestsys <= 0 || math.IsNaN(rbestsys) {
		return c.speedup // cannot scale the gain; hold
	}
	err := target - measured
	c.lastErr = err
	c.speedup += (1 - c.pole) * err / rbestsys
	if c.speedup < c.minS {
		c.speedup = c.minS
	}
	if c.speedup > c.maxS {
		c.speedup = c.maxS
	}
	c.sink.ControlStep(target, measured, err, c.pole, c.speedup)
	return c.speedup
}

// Speedup returns the current control signal without advancing the loop.
func (c *SpeedupController) Speedup() float64 { return c.speedup }

// Pole returns the current pole.
func (c *SpeedupController) Pole() float64 { return c.pole }

// SetPole overrides the pole; the value must satisfy 0 <= pole < 1 for the
// closed loop to be stable (Sec. 3.4.1).
func (c *SpeedupController) SetPole(pole float64) error {
	if pole < 0 || pole >= 1 || math.IsNaN(pole) {
		return fmt.Errorf("control: pole %v outside [0, 1)", pole)
	}
	c.pole = pole
	return nil
}

// LastError returns error(t) from the most recent Step.
func (c *SpeedupController) LastError() float64 { return c.lastErr }

// LastDelta returns delta(t) from the most recent AdaptPole.
func (c *SpeedupController) LastDelta() float64 { return c.lastDelt }

// Reset restores the integrator to the given speedup and zeroes the pole,
// as on a workload phase change forced by the caller.
func (c *SpeedupController) Reset(speedup float64) {
	c.speedup = speedup
	c.pole = 0
	c.lastErr = 0
	c.lastDelt = 0
}

// MaxTolerableDelta returns the largest multiplicative model error the loop
// tolerates at a given pole before going unstable: delta < 2/(1-pole)
// (Eqn 9). For pole = 0.1 this is about 2.2, the example in Sec. 3.4.2.
func MaxTolerableDelta(pole float64) float64 {
	if pole >= 1 {
		return math.Inf(1)
	}
	return 2 / (1 - pole)
}

// PoleForDelta inverts Eqn 11: the smallest stable pole for a measured
// model error delta, capped strictly below 1.
func PoleForDelta(delta float64) float64 {
	if delta > 2 {
		return math.Min(1-2/delta, maxPole)
	}
	return 0
}
