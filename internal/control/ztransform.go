package control

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// This file provides the discrete-time (Z-domain) analysis machinery used to
// verify JouleGuard's formal guarantees (Sec. 3.4) numerically:
//
//   - Polynomial and rational transfer-function arithmetic.
//   - The closed-loop composition F = CA/(1+CA) of Eqn 7.
//   - Pole extraction and the stability criterion |pole| < 1.
//   - DC gain F(1) = 1, the convergence criterion.
//   - Step-response simulation, used by tests to check settling behaviour
//     and by the robustness tests to watch the loop diverge when delta
//     exceeds the Eqn 9 bound.

// Poly is a real polynomial in z with Coeffs[i] the coefficient of z^i.
type Poly struct {
	Coeffs []float64
}

// NewPoly builds a polynomial from ascending-power coefficients and trims
// trailing zero coefficients so Degree is meaningful.
func NewPoly(coeffs ...float64) Poly {
	n := len(coeffs)
	for n > 1 && coeffs[n-1] == 0 {
		n--
	}
	out := make([]float64, n)
	copy(out, coeffs[:n])
	return Poly{Coeffs: out}
}

// Degree returns the polynomial degree (0 for constants, including the zero
// polynomial).
func (p Poly) Degree() int { return len(p.Coeffs) - 1 }

// Eval evaluates the polynomial at a complex point via Horner's rule.
func (p Poly) Eval(z complex128) complex128 {
	var acc complex128
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		acc = acc*z + complex(p.Coeffs[i], 0)
	}
	return acc
}

// Mul returns the product of two polynomials.
func (p Poly) Mul(q Poly) Poly {
	out := make([]float64, p.Degree()+q.Degree()+1)
	for i, a := range p.Coeffs {
		for j, b := range q.Coeffs {
			out[i+j] += a * b
		}
	}
	return NewPoly(out...)
}

// Add returns the sum of two polynomials.
func (p Poly) Add(q Poly) Poly {
	n := len(p.Coeffs)
	if len(q.Coeffs) > n {
		n = len(q.Coeffs)
	}
	out := make([]float64, n)
	for i := range out {
		if i < len(p.Coeffs) {
			out[i] += p.Coeffs[i]
		}
		if i < len(q.Coeffs) {
			out[i] += q.Coeffs[i]
		}
	}
	return NewPoly(out...)
}

// Scale returns k*p.
func (p Poly) Scale(k float64) Poly {
	out := make([]float64, len(p.Coeffs))
	for i, a := range p.Coeffs {
		out[i] = k * a
	}
	return NewPoly(out...)
}

// Roots returns all complex roots of the polynomial, found with the
// Durand-Kerner (Weierstrass) simultaneous iteration. It handles the
// low-degree cases in closed form. The zero polynomial has no roots.
func (p Poly) Roots() []complex128 {
	c := p.Coeffs
	// Strip leading (low-order) zero coefficients as roots at z=0.
	var zeros int
	for zeros < len(c)-1 && c[zeros] == 0 {
		zeros++
	}
	c = c[zeros:]
	roots := make([]complex128, 0, p.Degree())
	for i := 0; i < zeros; i++ {
		roots = append(roots, 0)
	}
	switch len(c) {
	case 0, 1:
		return roots
	case 2: // c0 + c1 z
		return append(roots, complex(-c[0]/c[1], 0))
	case 3: // quadratic
		a, b, cc := c[2], c[1], c[0]
		disc := complex(b*b-4*a*cc, 0)
		sq := cmplx.Sqrt(disc)
		return append(roots,
			(-complex(b, 0)+sq)/complex(2*a, 0),
			(-complex(b, 0)-sq)/complex(2*a, 0))
	}
	// Durand-Kerner on the monic normalisation.
	n := len(c) - 1
	monic := make([]complex128, len(c))
	lead := complex(c[n], 0)
	for i, a := range c {
		monic[i] = complex(a, 0) / lead
	}
	eval := func(z complex128) complex128 {
		var acc complex128
		for i := n; i >= 0; i-- {
			acc = acc*z + monic[i]
		}
		return acc
	}
	guess := make([]complex128, n)
	seed := complex(0.4, 0.9) // standard non-real, non-unit seed
	cur := complex(1, 0)
	for i := range guess {
		cur *= seed
		guess[i] = cur
	}
	for iter := 0; iter < 500; iter++ {
		var moved float64
		for i := range guess {
			num := eval(guess[i])
			den := complex(1, 0)
			for j := range guess {
				if j != i {
					den *= guess[i] - guess[j]
				}
			}
			if den == 0 {
				continue
			}
			d := num / den
			guess[i] -= d
			moved += cmplx.Abs(d)
		}
		if moved < 1e-13 {
			break
		}
	}
	return append(roots, guess...)
}

// TransferFunction is a rational function Num(z)/Den(z) describing a
// discrete-time LTI system.
type TransferFunction struct {
	Num Poly
	Den Poly
}

// NewTransferFunction builds a transfer function; the denominator must be
// nonzero.
func NewTransferFunction(num, den Poly) (TransferFunction, error) {
	if den.Degree() == 0 && den.Coeffs[0] == 0 {
		return TransferFunction{}, fmt.Errorf("control: zero denominator")
	}
	return TransferFunction{Num: num, Den: den}, nil
}

// Eval evaluates the transfer function at z.
func (tf TransferFunction) Eval(z complex128) complex128 {
	return tf.Num.Eval(z) / tf.Den.Eval(z)
}

// DCGain returns F(1), the steady-state gain. A convergent tracking loop
// has DC gain exactly 1 (Sec. 3.4.1).
func (tf TransferFunction) DCGain() float64 {
	return real(tf.Eval(1))
}

// Poles returns the roots of the denominator.
func (tf TransferFunction) Poles() []complex128 { return tf.Den.Roots() }

// Stable reports whether every pole lies strictly inside the unit circle,
// the discrete-time stability criterion used throughout Sec. 3.4.
func (tf TransferFunction) Stable() bool {
	for _, p := range tf.Poles() {
		if cmplx.Abs(p) >= 1-1e-12 {
			return false
		}
	}
	return true
}

// Series composes two systems in cascade: (tf*g)(z) = tf(z)g(z).
func (tf TransferFunction) Series(g TransferFunction) TransferFunction {
	return TransferFunction{Num: tf.Num.Mul(g.Num), Den: tf.Den.Mul(g.Den)}
}

// Feedback closes a unity negative-feedback loop around the open-loop
// system L: F = L/(1+L). With L = C*A this is exactly Eqn 7.
func (tf TransferFunction) Feedback() TransferFunction {
	return TransferFunction{
		Num: tf.Num,
		Den: tf.Den.Add(tf.Num),
	}
}

// String renders the transfer function for diagnostics.
func (tf TransferFunction) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%v) / (%v)", tf.Num.Coeffs, tf.Den.Coeffs)
	return b.String()
}

// PIController returns C(z) = (1-pole) z / (z-1), the Z-transform of
// JouleGuard's integral control law (Sec. 3.4.1).
func PIController(pole float64) TransferFunction {
	return TransferFunction{
		Num: NewPoly(0, 1-pole), // (1-pole) z
		Den: NewPoly(-1, 1),     // z - 1
	}
}

// ApplicationPlant returns A(z) = r/z, the one-step-delay application model
// with gain r = rbestsys (Sec. 3.4.1).
func ApplicationPlant(r float64) TransferFunction {
	return TransferFunction{
		Num: NewPoly(r),    // r
		Den: NewPoly(0, 1), // z
	}
}

// ClosedLoop composes Eqn 7 (or Eqn 8 when the plant gain carries a
// multiplicative model error delta): the closed loop mapping the target
// performance to the measured performance, for controller pole `pole`,
// estimated plant gain rhat and true plant gain delta*rhat.
func ClosedLoop(pole, rhat, delta float64) TransferFunction {
	// The controller is designed against rhat: its integral gain is
	// (1-pole)/rhat. The true plant has gain delta*rhat, so the open loop is
	// L(z) = (1-pole) delta z / ((z-1) z) * z ... algebraically the loop
	// reduces to F(z) = (1-pole) delta / (z + (1-pole) delta - 1) (Eqn 8).
	g := (1 - pole) * delta
	return TransferFunction{
		Num: NewPoly(g),
		Den: NewPoly(g-1, 1),
	}
}

// StepResponse simulates n steps of the closed loop's response to a unit
// step using the difference equation implied by the transfer function
// b(z)/a(z):  sum_i a_i y(t+i) = sum_j b_j u(t+j), normalised so the
// highest-order output coefficient is 1. The returned slice holds y(1..n).
func (tf TransferFunction) StepResponse(n int) []float64 {
	na := tf.Den.Degree()
	nb := tf.Num.Degree()
	a := tf.Den.Coeffs
	b := tf.Num.Coeffs
	lead := a[na]
	y := make([]float64, n)
	yAt := func(k int) float64 {
		if k < 0 || k >= len(y) {
			return 0
		}
		return y[k]
	}
	u := func(k int) float64 {
		if k >= 0 {
			return 1
		}
		return 0
	}
	// From a(z)Y(z) = b(z)U(z): for every output index k >= 0,
	//   a[na] y(k) = sum_j b[j] u(k-na+j) - sum_{i<na} a[i] y(k-na+i).
	for k := 0; k < n; k++ {
		var rhs float64
		for j := 0; j <= nb; j++ {
			rhs += b[j] * u(k-na+j)
		}
		for i := 0; i < na; i++ {
			rhs -= a[i] * yAt(k-na+i)
		}
		y[k] = rhs / lead
	}
	return y
}

// SettlingTime returns the first step index after which the response stays
// within tol of its final value 1, or -1 if it never settles within the
// simulated horizon.
func SettlingTime(resp []float64, tol float64) int {
	settled := -1
	for i, v := range resp {
		if math.Abs(v-1) <= tol {
			if settled == -1 {
				settled = i
			}
		} else {
			settled = -1
		}
	}
	return settled
}
