package control

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewEWMARejectsBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -0.1, 1.0001, math.NaN()} {
		if _, err := NewEWMA(alpha); err == nil {
			t.Errorf("NewEWMA(%v): want error, got nil", alpha)
		}
	}
	if _, err := NewEWMA(1); err != nil {
		t.Errorf("NewEWMA(1): unexpected error %v", err)
	}
}

func TestMustEWMAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEWMA(-1) did not panic")
		}
	}()
	MustEWMA(-1)
}

func TestEWMAFirstObservationPrimes(t *testing.T) {
	e := MustEWMA(0.85)
	if e.Primed() {
		t.Fatal("fresh EWMA reports primed")
	}
	if got := e.Observe(42); got != 42 {
		t.Fatalf("first observation: got %v, want 42", got)
	}
	if !e.Primed() {
		t.Fatal("EWMA not primed after observation")
	}
}

func TestEWMAFollowsEqn1(t *testing.T) {
	// Paper Eqn 1 with alpha = 0.85: v(t) = 0.15 v(t-1) + 0.85 x(t).
	e := MustEWMA(0.85)
	e.Prime(10)
	got := e.Observe(20)
	want := 0.15*10 + 0.85*20
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Observe: got %v, want %v", got, want)
	}
}

func TestEWMAConvergesToConstantSignal(t *testing.T) {
	e := MustEWMA(0.5)
	e.Prime(0)
	for i := 0; i < 100; i++ {
		e.Observe(7)
	}
	if math.Abs(e.Value()-7) > 1e-9 {
		t.Fatalf("EWMA did not converge: %v", e.Value())
	}
}

func TestEWMAPrimeOverrides(t *testing.T) {
	e := MustEWMA(0.85)
	e.Observe(1)
	e.Prime(100)
	if e.Value() != 100 {
		t.Fatalf("Prime did not override: %v", e.Value())
	}
}

// Property: the EWMA output always lies between the min and max of the prior
// value and every observation (convex combination invariant).
func TestEWMAConvexCombinationProperty(t *testing.T) {
	f := func(prior float64, obs []float64) bool {
		if math.IsNaN(prior) || math.IsInf(prior, 0) {
			return true
		}
		e := MustEWMA(0.85)
		e.Prime(prior)
		lo, hi := prior, prior
		for _, x := range obs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			e.Observe(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: higher alpha tracks a step change faster.
func TestEWMAAlphaOrderingProperty(t *testing.T) {
	slow := MustEWMA(0.2)
	fast := MustEWMA(0.9)
	slow.Prime(0)
	fast.Prime(0)
	for i := 0; i < 10; i++ {
		slow.Observe(1)
		fast.Observe(1)
		if fast.Value() < slow.Value() {
			t.Fatalf("step %d: fast (%v) behind slow (%v)", i, fast.Value(), slow.Value())
		}
	}
}

func TestRatePowerEstimateEfficiency(t *testing.T) {
	rp, err := NewRatePowerEstimate(0.85, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rp.Efficiency(), 2.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("prior efficiency: got %v, want %v", got, want)
	}
	for i := 0; i < 200; i++ {
		rp.Observe(60, 30)
	}
	if got, want := rp.Efficiency(), 2.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("converged efficiency: got %v, want %v", got, want)
	}
	if math.Abs(rp.Rate.Value()-60) > 1e-6 {
		t.Fatalf("rate estimate: %v", rp.Rate.Value())
	}
}

func TestRatePowerEstimateZeroPower(t *testing.T) {
	rp, err := NewRatePowerEstimate(1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	rp.Observe(100, 0)
	if got := rp.Efficiency(); got != 0 {
		t.Fatalf("efficiency with zero power: got %v, want 0", got)
	}
}

func TestRatePowerEstimateBadAlpha(t *testing.T) {
	if _, err := NewRatePowerEstimate(0, 1, 1); err == nil {
		t.Fatal("want error for alpha=0")
	}
}

func TestKalmanConvergesToConstant(t *testing.T) {
	f := NewKalman1D(0, 10, 1e-4, 0.5)
	for i := 0; i < 500; i++ {
		f.Observe(3)
	}
	if math.Abs(f.Value()-3) > 1e-3 {
		t.Fatalf("Kalman did not converge: %v", f.Value())
	}
	if f.Count() != 500 {
		t.Fatalf("count: %d", f.Count())
	}
}

func TestKalmanIgnoresNonFinite(t *testing.T) {
	f := NewKalman1D(1, 1, 1e-3, 1e-2)
	f.Observe(math.NaN())
	f.Observe(math.Inf(1))
	if f.Value() != 1 {
		t.Fatalf("non-finite observation moved the state: %v", f.Value())
	}
}

func TestKalmanVarianceShrinks(t *testing.T) {
	f := NewKalman1D(0, 100, 1e-6, 1)
	v0 := f.Variance()
	for i := 0; i < 50; i++ {
		f.Observe(0)
	}
	if f.Variance() >= v0 {
		t.Fatalf("variance did not shrink: %v -> %v", v0, f.Variance())
	}
}

func TestKalmanSanitisesParameters(t *testing.T) {
	f := NewKalman1D(0, -1, -1, 0)
	f.Observe(5)
	if math.IsNaN(f.Value()) {
		t.Fatal("filter produced NaN with degenerate parameters")
	}
}
