package control

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// plant simulates the application model A(z) = r/z of Sec. 3.4.1: the
// performance measured at iteration t reflects the speedup commanded at the
// end of iteration t-1. The test loops call step *before* updating the
// controller, so the one-step delay is realised by the call ordering.
type plant struct {
	rate float64
}

func (p *plant) step(speedup float64) float64 {
	return speedup * p.rate
}

func TestControllerConvergesWithAccurateModel(t *testing.T) {
	// With a perfect model (delta = 1) and pole 0 the loop is deadbeat:
	// it should hit the target within a couple of iterations.
	c := NewSpeedupController(WithSpeedupBounds(0, math.Inf(1)))
	p := &plant{rate: 100}
	target := 250.0
	var measured float64
	for i := 0; i < 20; i++ {
		measured = p.step(c.Speedup())
		c.AdaptPole(measured, 100*c.Speedup())
		c.Step(target, measured, 100)
	}
	if math.Abs(measured-target) > 1e-6 {
		t.Fatalf("did not converge: measured %v, target %v", measured, target)
	}
	if got, want := c.Speedup(), 2.5; math.Abs(got-want) > 1e-6 {
		t.Fatalf("speedup: got %v, want %v", got, want)
	}
}

func TestControllerConvergesDespiteModelError(t *testing.T) {
	// The learner thinks the system runs at 100 units/s but the truth is
	// delta times that. Within the Eqn 9 bound the loop must still settle.
	for _, delta := range []float64{0.5, 1, 1.5, 1.9} {
		c := NewSpeedupController(WithFixedPole(0), WithSpeedupBounds(0, math.Inf(1)))
		trueRate := 100 * delta
		p := &plant{rate: trueRate}
		target := 300.0
		var measured float64
		for i := 0; i < 200; i++ {
			measured = p.step(c.Speedup())
			c.Step(target, measured, 100) // note: controller believes rate=100
		}
		if math.Abs(measured-target) > 1e-3 {
			t.Errorf("delta=%v: measured %v, want %v", delta, measured, target)
		}
	}
}

func TestControllerDivergesBeyondRobustnessBound(t *testing.T) {
	// Outside the Eqn 9 bound (delta > 2 at pole 0) a fixed-pole loop must
	// oscillate with growing amplitude — this is the instability JouleGuard's
	// adaptive pole exists to prevent.
	c := NewSpeedupController(WithFixedPole(0), WithSpeedupBounds(math.Inf(-1), math.Inf(1)))
	delta := 2.5
	p := &plant{rate: 100 * delta}
	target := 300.0
	var maxErr float64
	for i := 0; i < 60; i++ {
		measured := p.step(c.Speedup())
		e := math.Abs(target - measured)
		if i > 10 && e > maxErr {
			maxErr = e
		}
		c.Step(target, measured, 100)
	}
	if maxErr < 1000 {
		t.Fatalf("expected divergence with delta=%v, max error only %v", delta, maxErr)
	}
}

func TestAdaptivePoleRestoresStability(t *testing.T) {
	// The learner starts with a grossly wrong model (rate estimate 100, true
	// rate 450, a 4.5x error: far outside the pole-0 stability bound). In
	// JouleGuard the adaptive pole slows the controller while the EWMA
	// estimator corrects the model (Sec. 3.4.2); together they converge
	// where a fixed-pole controller with the same wrong model diverges
	// (TestControllerDivergesBeyondRobustnessBound).
	c := NewSpeedupController(WithSpeedupBounds(0, math.Inf(1)))
	trueRate := 450.0
	est := MustEWMA(DefaultAlpha)
	est.Prime(100)
	p := &plant{rate: trueRate}
	target := 900.0
	var measured float64
	for i := 0; i < 400; i++ {
		measured = p.step(c.Speedup())
		// Normalise by the speedup commanded when this measurement was
		// produced to recover the system rate, as the runtime does.
		sysRate := measured / math.Max(c.Speedup(), 1e-9)
		c.AdaptPole(sysRate, est.Value())
		est.Observe(sysRate)
		c.Step(target, measured, est.Value())
	}
	if math.Abs(measured-target) > 1 {
		t.Fatalf("adaptive loop did not converge: measured %v, target %v", measured, target)
	}
	if math.Abs(est.Value()-trueRate) > 1 {
		t.Fatalf("estimator did not learn the rate: %v", est.Value())
	}
}

func TestAdaptPoleMatchesEqn11(t *testing.T) {
	c := NewSpeedupController()
	cases := []struct {
		measured, estimated, wantPole float64
	}{
		{100, 100, 0}, // delta = 0
		{150, 100, 0}, // delta = 0.5 <= 2
		{300, 100, 0}, // delta = 2 boundary -> 0
		{301, 100, 1 - 2/2.01},
		{500, 100, 1 - 2/4.0}, // delta = 4 -> pole 0.5
	}
	for _, tc := range cases {
		c.AdaptPole(tc.measured, tc.estimated)
		if math.Abs(c.Pole()-tc.wantPole) > 1e-9 {
			t.Errorf("AdaptPole(%v, %v): pole %v, want %v",
				tc.measured, tc.estimated, c.Pole(), tc.wantPole)
		}
	}
}

func TestAdaptPoleDegenerateEstimate(t *testing.T) {
	c := NewSpeedupController()
	c.AdaptPole(100, 0)
	if c.Pole() < 0.9 {
		t.Fatalf("degenerate estimate should force a conservative pole, got %v", c.Pole())
	}
	if !math.IsInf(c.LastDelta(), 1) {
		t.Fatalf("LastDelta: %v", c.LastDelta())
	}
}

func TestFixedPoleIgnoresAdaptation(t *testing.T) {
	c := NewSpeedupController(WithFixedPole(0.3))
	c.AdaptPole(1e9, 1)
	if c.Pole() != 0.3 {
		t.Fatalf("fixed pole moved: %v", c.Pole())
	}
}

func TestSpeedupBoundsClamp(t *testing.T) {
	c := NewSpeedupController(WithSpeedupBounds(1, 4))
	c.Step(1e9, 0, 1) // enormous positive error
	if c.Speedup() != 4 {
		t.Fatalf("upper clamp: %v", c.Speedup())
	}
	c.Step(-1e9, 1e12, 1) // enormous negative error
	if c.Speedup() != 1 {
		t.Fatalf("lower clamp: %v", c.Speedup())
	}
}

func TestStepHoldsOnDegenerateGain(t *testing.T) {
	c := NewSpeedupController(WithInitialSpeedup(2))
	if got := c.Step(10, 5, 0); got != 2 {
		t.Fatalf("Step with zero gain moved the state: %v", got)
	}
	if got := c.Step(10, 5, math.NaN()); got != 2 {
		t.Fatalf("Step with NaN gain moved the state: %v", got)
	}
}

func TestSetPoleValidates(t *testing.T) {
	c := NewSpeedupController()
	for _, bad := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if err := c.SetPole(bad); err == nil {
			t.Errorf("SetPole(%v): want error", bad)
		}
	}
	if err := c.SetPole(0.5); err != nil || c.Pole() != 0.5 {
		t.Fatalf("SetPole(0.5): err=%v pole=%v", err, c.Pole())
	}
}

func TestReset(t *testing.T) {
	c := NewSpeedupController()
	c.AdaptPole(1000, 1)
	c.Step(100, 0, 10)
	c.Reset(1)
	if c.Speedup() != 1 || c.Pole() != 0 || c.LastError() != 0 {
		t.Fatalf("Reset left state: s=%v pole=%v err=%v", c.Speedup(), c.Pole(), c.LastError())
	}
}

func TestMaxTolerableDelta(t *testing.T) {
	if got := MaxTolerableDelta(0.1); math.Abs(got-2/0.9) > 1e-12 {
		t.Fatalf("MaxTolerableDelta(0.1) = %v", got) // paper's example: ~2.2
	}
	if !math.IsInf(MaxTolerableDelta(1), 1) {
		t.Fatal("MaxTolerableDelta(1) should be +Inf")
	}
}

// Property: PoleForDelta always yields a pole whose tolerance covers delta.
func TestPoleForDeltaCoversProperty(t *testing.T) {
	f := func(raw float64) bool {
		delta := math.Abs(raw)
		if math.IsNaN(delta) || math.IsInf(delta, 0) || delta == 0 {
			return true
		}
		pole := PoleForDelta(delta)
		if pole < 0 || pole >= 1 {
			return false
		}
		if delta > 1e9 {
			// Beyond the pole cap the bound is intentionally not covered;
			// only require a valid pole (checked above).
			return true
		}
		// Strictly inside the bound except exactly at delta=2.
		return delta <= MaxTolerableDelta(pole)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: for random stable configurations the closed loop converges to
// any positive target from any initial state.
func TestControllerConvergenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rate := 1 + rng.Float64()*999
		delta := 0.2 + rng.Float64()*1.7 // inside the pole-0 bound
		target := rate * (0.5 + rng.Float64()*3)
		c := NewSpeedupController(WithFixedPole(0), WithSpeedupBounds(0, math.Inf(1)), WithInitialSpeedup(rng.Float64()*3))
		p := &plant{rate: rate * delta}
		var measured float64
		for i := 0; i < 500; i++ {
			measured = p.step(c.Speedup())
			c.Step(target, measured, rate)
		}
		if math.Abs(measured-target) > 1e-2*target {
			t.Fatalf("trial %d (rate=%v delta=%v target=%v): measured %v",
				trial, rate, delta, target, measured)
		}
	}
}
