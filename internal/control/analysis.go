package control

import "math"

// StepMetrics summarises a closed loop's unit-step response in the terms
// control engineers (and Sec. 3.4's analysis) care about.
type StepMetrics struct {
	// Overshoot is the peak excursion above the final value, as a fraction
	// of the final value (0 for a monotone response).
	Overshoot float64
	// RiseTime is the first step index at which the response crosses 90%
	// of the final value (-1 if never).
	RiseTime int
	// Settling is the first index after which the response stays within 2%
	// of the final value (-1 if it never settles in the horizon).
	Settling int
	// SteadyStateError is |1 - final value| averaged over the last tenth
	// of the horizon (0 for a convergent tracking loop, Sec. 3.4.1).
	SteadyStateError float64
	// Diverged reports whether the response grows without bound.
	Diverged bool
}

// AnalyzeStep computes StepMetrics for a recorded unit-step response.
func AnalyzeStep(resp []float64) StepMetrics {
	m := StepMetrics{RiseTime: -1, Settling: -1}
	if len(resp) == 0 {
		return m
	}
	// Steady state: mean of the last tenth.
	tail := len(resp) / 10
	if tail < 1 {
		tail = 1
	}
	var ss float64
	for _, v := range resp[len(resp)-tail:] {
		ss += v
	}
	ss /= float64(tail)
	m.SteadyStateError = math.Abs(1 - ss)
	var peak float64
	for i, v := range resp {
		if math.Abs(v) > 100 || math.IsNaN(v) || math.IsInf(v, 0) {
			m.Diverged = true
		}
		if v > peak {
			peak = v
		}
		if m.RiseTime < 0 && v >= 0.9 {
			m.RiseTime = i
		}
	}
	if peak > 1 {
		m.Overshoot = peak - 1
	}
	m.Settling = SettlingTime(resp, 0.02)
	return m
}

// DesignPole returns the pole that settles a first-order loop (Eqn 7)
// within the requested number of steps at 2% tolerance: the response is
// 1 - pole^k, so pole = 0.02^(1/steps). Returns 0 (deadbeat) for steps
// <= 1.
func DesignPole(steps int) float64 {
	if steps <= 1 {
		return 0
	}
	return math.Pow(0.02, 1/float64(steps))
}

// FrequencyPoint is the loop's response at one normalised frequency.
type FrequencyPoint struct {
	Omega     float64 // radians/sample, in [0, pi]
	Magnitude float64
	PhaseRad  float64
}

// FrequencyResponse evaluates the transfer function along the unit circle
// at n evenly spaced frequencies from DC to Nyquist — the discrete Bode
// data for a loop. Useful for seeing how aggressively a pole filters the
// measurement noise the paper's Sec. 5.3 traces show.
func FrequencyResponse(tf TransferFunction, n int) []FrequencyPoint {
	if n < 2 {
		n = 2
	}
	out := make([]FrequencyPoint, n)
	for i := 0; i < n; i++ {
		w := math.Pi * float64(i) / float64(n-1)
		z := complex(math.Cos(w), math.Sin(w))
		g := tf.Eval(z)
		out[i] = FrequencyPoint{
			Omega:     w,
			Magnitude: cmplxAbs(g),
			PhaseRad:  cmplxPhase(g),
		}
	}
	return out
}

func cmplxAbs(z complex128) float64   { return math.Hypot(real(z), imag(z)) }
func cmplxPhase(z complex128) float64 { return math.Atan2(imag(z), real(z)) }

// RobustnessMargin returns how much multiplicative model error the loop at
// the given pole tolerates before the closed loop (Eqn 8) leaves the unit
// circle, as a fraction of the current operating delta: margin =
// MaxTolerableDelta(pole)/delta. Values above 1 mean stable.
func RobustnessMargin(pole, delta float64) float64 {
	if delta <= 0 {
		return math.Inf(1)
	}
	return MaxTolerableDelta(pole) / delta
}
