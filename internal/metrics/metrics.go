// Package metrics implements the paper's evaluation metrics: relative
// error against the energy goal (Eqn 12) and effective accuracy against the
// oracle (Eqn 13), plus the summary statistics the figures report.
package metrics

import (
	"math"
	"sort"
)

// RelativeError implements Eqn 12: the percentage by which measured energy
// exceeds the goal, and zero when the goal is met or beaten ("we only count
// the error if it is above the target").
func RelativeError(measured, goal float64) float64 {
	if goal <= 0 || math.IsNaN(measured) || math.IsNaN(goal) {
		return 0
	}
	if measured <= goal {
		return 0
	}
	return (measured - goal) / goal * 100
}

// EffectiveAccuracy implements Eqn 13: measured accuracy as a fraction of
// the oracle's accuracy for the same goal. Values slightly above 1 can
// occur when measurement noise favours the runtime; callers may clamp.
func EffectiveAccuracy(measured, oracle float64) float64 {
	if oracle <= 0 || math.IsNaN(measured) || math.IsNaN(oracle) {
		return 0
	}
	return measured / oracle
}

// Summary holds basic statistics of a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	StdDev         float64
	P50, P90, P99  float64
}

// Summarize computes summary statistics. An empty sample yields the zero
// Summary, and non-finite values (NaN, ±Inf) are dropped before any
// statistic is computed — one NaN would otherwise scramble the sort
// order and poison every percentile, and a single ±Inf would swallow the
// mean and standard deviation. N counts only the finite samples kept.
func Summarize(xs []float64) Summary {
	var s Summary
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 {
		return s
	}
	sort.Float64s(sorted)
	s.N = len(sorted)
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	var sq float64
	for _, x := range sorted {
		d := x - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(s.N))
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile interpolates the p-quantile of a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Clamp01 clamps x into [0, 1].
func Clamp01(x float64) float64 {
	switch {
	case math.IsNaN(x), x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
