package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRelativeErrorEqn12(t *testing.T) {
	cases := []struct {
		measured, goal, want float64
	}{
		{120, 100, 20},
		{100, 100, 0},
		{80, 100, 0}, // under the target counts as zero error
		{0, 100, 0},
	}
	for _, tc := range cases {
		if got := RelativeError(tc.measured, tc.goal); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("RelativeError(%v, %v) = %v, want %v", tc.measured, tc.goal, got, tc.want)
		}
	}
	if RelativeError(1, 0) != 0 || RelativeError(math.NaN(), 1) != 0 {
		t.Error("degenerate inputs must yield zero")
	}
}

func TestRelativeErrorNonNegativeProperty(t *testing.T) {
	f := func(m, g float64) bool {
		return RelativeError(m, g) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveAccuracyEqn13(t *testing.T) {
	if got := EffectiveAccuracy(0.9, 0.95); math.Abs(got-0.9/0.95) > 1e-12 {
		t.Fatalf("EffectiveAccuracy: %v", got)
	}
	if EffectiveAccuracy(0.5, 0) != 0 {
		t.Fatal("zero oracle must yield 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stddev: %v", s.StdDev)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary: %+v", empty)
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P99 != 7 {
		t.Fatalf("singleton summary: %+v", one)
	}
}

func TestSummarizeTable(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		in   []float64
		want Summary
	}{
		{
			name: "empty yields zero value",
			in:   nil,
			want: Summary{},
		},
		{
			name: "all non-finite yields zero value",
			in:   []float64{math.NaN(), inf, -inf},
			want: Summary{},
		},
		{
			name: "non-finite samples dropped before statistics",
			in:   []float64{4, math.NaN(), 1, inf, 3, -inf, 2, 5},
			want: Summary{N: 5, Mean: 3, Min: 1, Max: 5, StdDev: math.Sqrt(2), P50: 3, P90: 4.6, P99: 4.96},
		},
		{
			name: "constant sample has zero spread",
			in:   []float64{2, 2, 2, 2},
			want: Summary{N: 4, Mean: 2, Min: 2, Max: 2, P50: 2, P90: 2, P99: 2},
		},
		{
			name: "even length interpolates the median",
			in:   []float64{1, 2, 3, 4},
			want: Summary{N: 4, Mean: 2.5, Min: 1, Max: 4, StdDev: math.Sqrt(1.25), P50: 2.5, P90: 3.7, P99: 3.97},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Summarize(tc.in)
			close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }
			if got.N != tc.want.N || !close(got.Mean, tc.want.Mean) ||
				!close(got.Min, tc.want.Min) || !close(got.Max, tc.want.Max) ||
				!close(got.StdDev, tc.want.StdDev) || !close(got.P50, tc.want.P50) ||
				!close(got.P90, tc.want.P90) || !close(got.P99, tc.want.P99) {
				t.Errorf("Summarize(%v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

// TestPercentileInterpolationConsistency pins that P50/P90/P99 all come
// from the same linear-interpolation rule: the quantile of the sample
// {0, 1, ..., n-1} at p is exactly p*(n-1).
func TestPercentileInterpolationConsistency(t *testing.T) {
	xs := make([]float64, 11)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	for _, tc := range []struct{ got, want float64 }{
		{s.P50, 5}, {s.P90, 9}, {s.P99, 9.9},
	} {
		if math.Abs(tc.got-tc.want) > 1e-12 {
			t.Errorf("percentile = %v, want %v", tc.got, tc.want)
		}
	}
}

func TestPercentilesOrdered(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndClamp(t *testing.T) {
	if Mean(nil) != 0 || Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
	if Clamp01(-1) != 0 || Clamp01(2) != 1 || Clamp01(0.5) != 0.5 || Clamp01(math.NaN()) != 0 {
		t.Fatal("Clamp01 wrong")
	}
}
