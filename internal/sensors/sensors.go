// Package sensors emulates the power instrumentation of the paper's three
// platforms (Sec. 4.2): Intel RAPL energy-status MSRs (fixed energy units,
// 32-bit wrap-around counters, millisecond read granularity) on Tablet and
// Server, INA231 power sensors on Mobile, and the slow external power meter
// used to verify full-system energy. A FullSystemReader combines an on-chip
// sensor with the paper's fixed-power adder to produce the feedback signal
// JouleGuard consumes.
package sensors

import (
	"fmt"
	"math"
)

// RAPLUnit is the Sandy Bridge energy-status unit: 1/2^16 J ~ 15.3 uJ
// (Rotem et al., Hot Chips'11, cited in Sec. 4.2).
const RAPLUnit = 1.0 / 65536

// RAPL emulates one package's MSR_PKG_ENERGY_STATUS: a 32-bit counter of
// energy units that wraps around. Only the CPU-rail share of system power
// is visible to it.
type RAPL struct {
	units  uint64  // total energy in units (not wrapped)
	carryJ float64 // sub-unit remainder carried between deposits
}

// Deposit accumulates joules of package energy into the counter.
func (r *RAPL) Deposit(joules float64) {
	if joules <= 0 || math.IsNaN(joules) {
		return
	}
	total := r.carryJ + joules
	u := math.Floor(total / RAPLUnit)
	r.carryJ = total - u*RAPLUnit
	r.units += uint64(u)
}

// Read returns the current 32-bit wrapped counter value, as software would
// read the MSR.
func (r *RAPL) Read() uint32 { return uint32(r.units & 0xFFFFFFFF) }

// EnergyBetween converts two successive MSR reads into joules, handling a
// single wrap-around (reads must be frequent enough that the counter wraps
// at most once, which at 15.3 uJ units and server power is every few
// hours).
func EnergyBetween(prev, cur uint32) float64 {
	delta := uint64(cur) - uint64(prev)
	if cur < prev {
		delta = (1 << 32) - uint64(prev) + uint64(cur)
	}
	return float64(delta) * RAPLUnit
}

// INA231 emulates the Mobile platform's per-rail power sensors: it reports
// instantaneous rail power in milliwatts, updated by the simulation.
type INA231 struct {
	Rail string
	mW   uint32
}

// Set updates the rail's instantaneous power.
func (s *INA231) Set(watts float64) {
	if watts < 0 || math.IsNaN(watts) {
		watts = 0
	}
	s.mW = uint32(math.Round(watts * 1000))
}

// PowerW returns the sensed power in watts (quantised to milliwatts, as the
// real part reports).
func (s *INA231) PowerW() float64 { return float64(s.mW) / 1000 }

// ExternalMeter is the wall-plug meter of Sec. 4.2: it samples full-system
// power at a slow (1 s) granularity — too slow for dynamic feedback but
// authoritative for whole-run energy.
type ExternalMeter struct {
	Period   float64 // seconds between samples
	lastTick float64
	lastW    float64
	samples  []float64
	energyJ  float64
}

// NewExternalMeter creates a meter with the given sampling period.
func NewExternalMeter(period float64) (*ExternalMeter, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sensors: meter period %v must be positive", period)
	}
	return &ExternalMeter{Period: period}, nil
}

// Advance tells the meter that the system drew `watts` for `dt` seconds.
// Energy integrates exactly; the sample log records one reading per period.
func (m *ExternalMeter) Advance(watts, dt float64) {
	if dt <= 0 || math.IsNaN(watts) {
		return
	}
	m.energyJ += watts * dt
	m.lastW = watts
	m.lastTick += dt
	for m.lastTick >= m.Period {
		m.samples = append(m.samples, watts)
		m.lastTick -= m.Period
	}
}

// EnergyJ returns total measured energy.
func (m *ExternalMeter) EnergyJ() float64 { return m.energyJ }

// Samples returns the recorded 1 Hz power samples.
func (m *ExternalMeter) Samples() []float64 { return append([]float64(nil), m.samples...) }

// LastPowerW returns the most recent instantaneous power.
func (m *ExternalMeter) LastPowerW() float64 { return m.lastW }

// Reader is the feedback interface the runtime consumes: cumulative energy
// and average power since the last call.
type Reader interface {
	// ReadEnergy returns the cumulative full-system energy in joules.
	ReadEnergy() float64
}

// FullSystemReader implements the paper's measurement strategy on the Intel
// platforms: fast on-chip counters cover only the package, so a fixed
// constant (the externally measured non-CPU power) is added (Sec. 4.2:
// "use the on-chip power meters plus a fixed constant for dynamic
// feedback"). The reconstruction is deliberately imperfect, as on real
// hardware: the true non-CPU draw is the fixed component plus a small
// load-correlated leak (voltage regulators, fans) the MSR never sees and
// the fixed adder cannot recover.
type FullSystemReader struct {
	rapl    *RAPL
	prevMSR uint32
	accumJ  float64
	FixedW  float64 // constant adder for non-CPU components
	Leak    float64 // fraction of package power drawn off-package
	clock   float64 // seconds of elapsed time seen so far
}

// NewFullSystemReader builds a reader. fixedW is the constant the paper
// adds for non-CPU components; leak is the fraction of package-correlated
// power invisible to the MSR (0 for a perfect sensor).
func NewFullSystemReader(fixedW, leak float64) (*FullSystemReader, error) {
	if fixedW < 0 {
		return nil, fmt.Errorf("sensors: fixed adder %v negative", fixedW)
	}
	if leak < 0 || leak >= 1 {
		return nil, fmt.Errorf("sensors: leak %v outside [0,1)", leak)
	}
	return &FullSystemReader{rapl: &RAPL{}, FixedW: fixedW, Leak: leak}, nil
}

// Advance feeds the true system power over an interval into the underlying
// RAPL counter: only the package share (true minus fixed, minus the leak)
// lands in the MSR.
func (f *FullSystemReader) Advance(trueWatts, dt float64) {
	if dt <= 0 {
		return
	}
	pkg := (trueWatts - f.FixedW) * (1 - f.Leak)
	if pkg < 0 {
		pkg = 0
	}
	f.rapl.Deposit(pkg * dt)
	f.clock += dt
}

// ReadEnergy returns the reconstructed full-system energy: MSR delta plus
// the fixed adder integrated over elapsed time.
func (f *FullSystemReader) ReadEnergy() float64 {
	cur := f.rapl.Read()
	f.accumJ += EnergyBetween(f.prevMSR, cur)
	f.prevMSR = cur
	return f.accumJ + f.FixedW*f.clock
}

// RAPLCounter exposes the underlying MSR for tests.
func (f *FullSystemReader) RAPLCounter() uint32 { return f.rapl.Read() }

// INAReader reconstructs full-system energy from INA231 rail sensors
// (Mobile): the simulation updates the rail powers, and energy integrates
// rail power over time. The rails cover the SoC and DRAM; a small fixed
// board adder accounts for the rest.
type INAReader struct {
	Rails  []*INA231
	BoardW float64 // constant adder for off-rail board components
	accumJ float64
	clock  float64
}

// NewINAReader builds a reader over the given rails with a board adder.
func NewINAReader(boardW float64, rails ...string) *INAReader {
	r := &INAReader{BoardW: boardW}
	for _, name := range rails {
		r.Rails = append(r.Rails, &INA231{Rail: name})
	}
	return r
}

// Advance distributes the on-rail power across the rails (evenly, which is
// immaterial to the total) and integrates.
func (r *INAReader) Advance(trueWatts, dt float64) {
	if dt <= 0 || len(r.Rails) == 0 {
		return
	}
	onRail := trueWatts - r.BoardW
	if onRail < 0 {
		onRail = 0
	}
	per := onRail / float64(len(r.Rails))
	var sensed float64
	for _, rail := range r.Rails {
		rail.Set(per)
		sensed += rail.PowerW()
	}
	r.accumJ += sensed * dt
	r.clock += dt
}

// ReadEnergy returns cumulative sensed energy plus the board adder.
func (r *INAReader) ReadEnergy() float64 { return r.accumJ + r.BoardW*r.clock }

// Advancer is a sensor that integrates true power over simulated time.
type Advancer interface {
	Advance(trueWatts, dt float64)
	ReadEnergy() float64
}

// ForPlatform returns the paper's measurement setup for a platform name:
// INA231 rails on Mobile, RAPL plus a fixed adder on Tablet and Server
// (Sec. 4.2). The fixed adders match the platform models in
// internal/platform.
func ForPlatform(name string) (Advancer, error) {
	switch name {
	case "Mobile":
		return NewINAReader(0.3, "big", "LITTLE", "DRAM", "GPU"), nil
	case "Tablet":
		// Nearly everything is on-package; small fixed adder, tiny leak.
		return NewFullSystemReader(1.9, 0.02)
	case "Server":
		// The fixed adder covers the 75-90 W of non-CPU components; a 2%
		// load-correlated leak (VRs, fans) stays invisible.
		return NewFullSystemReader(85, 0.02)
	}
	return nil, fmt.Errorf("sensors: unknown platform %q", name)
}
