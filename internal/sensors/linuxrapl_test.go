package sensors

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"jouleguard/internal/linuxsys"
)

// fakePowercap builds a synthetic /sys/class/powercap tree.
type fakePowercap struct {
	root  string
	zones []string
}

func newFakePowercap(t *testing.T, zones int) *fakePowercap {
	t.Helper()
	root := t.TempDir()
	f := &fakePowercap{root: root}
	for z := 0; z < zones; z++ {
		name := "intel-rapl:" + strconv.Itoa(z)
		dir := filepath.Join(root, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		f.zones = append(f.zones, dir)
		f.set(t, z, 0)
		if err := os.WriteFile(filepath.Join(dir, "max_energy_range_uj"), []byte("1000000\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		// A subzone that must NOT be double counted.
		sub := filepath.Join(root, name+":0")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "energy_uj"), []byte("999999999\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func (f *fakePowercap) set(t *testing.T, zone int, uj uint64) {
	t.Helper()
	path := filepath.Join(f.zones[zone], "energy_uj")
	if err := os.WriteFile(path, []byte(strconv.FormatUint(uj, 10)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLinuxRAPLDiscovery(t *testing.T) {
	f := newFakePowercap(t, 2)
	r, err := NewLinuxRAPLReader(f.root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Zones() != 2 {
		t.Fatalf("zones: %d (subzones must be excluded)", r.Zones())
	}
}

func TestLinuxRAPLUnavailable(t *testing.T) {
	if _, err := NewLinuxRAPLReader(filepath.Join(t.TempDir(), "nope"), 0); err == nil {
		t.Error("want error for missing root")
	}
	if _, err := NewLinuxRAPLReader(t.TempDir(), 0); err == nil {
		t.Error("want error for empty powercap dir")
	}
}

func TestLinuxRAPLAccumulates(t *testing.T) {
	f := newFakePowercap(t, 2)
	r, err := NewLinuxRAPLReader(f.root, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.set(t, 0, 500000) // 0.5 J
	f.set(t, 1, 250000) // 0.25 J
	got, err := r.ReadEnergyAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("energy: %v, want 0.75", got)
	}
	// Second read with no counter movement: unchanged.
	got, _ = r.ReadEnergyAt(2)
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("second read: %v", got)
	}
}

func TestLinuxRAPLWrapAround(t *testing.T) {
	f := newFakePowercap(t, 1)
	r, err := NewLinuxRAPLReader(f.root, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.set(t, 0, 900000)
	if _, err := r.ReadEnergyAt(1); err != nil {
		t.Fatal(err)
	}
	// Wrap: max range is 1,000,000 uJ; the counter falls to 100,000.
	f.set(t, 0, 100000)
	got, err := r.ReadEnergyAt(2)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9 + 0.2 // 900k uJ, then (1e6-900k)+100k = 200k uJ
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("wrapped energy: %v, want %v", got, want)
	}
}

func TestLinuxRAPLFixedAdder(t *testing.T) {
	f := newFakePowercap(t, 1)
	r, err := NewLinuxRAPLReader(f.root, 10) // 10 W of non-CPU power
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadEnergyAt(100); err != nil { // anchors the clock
		t.Fatal(err)
	}
	got, err := r.ReadEnergyAt(105) // 5 seconds later
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-50) > 1e-9 {
		t.Fatalf("fixed adder energy: %v, want 50", got)
	}
}

func TestLinuxRAPLBadCounter(t *testing.T) {
	f := newFakePowercap(t, 1)
	r, err := NewLinuxRAPLReader(f.root, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Retry.Sleep = func(time.Duration) {} // keep the failing path fast
	if err := os.WriteFile(filepath.Join(f.zones[0], "energy_uj"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadEnergyAt(1); err == nil {
		t.Error("want error for unparsable counter")
	}
}

// Golden: each of two zones wraps in a different sampling window, and the
// accumulated total must equal the exact uJ ledger — wrap correction is
// per-zone state, not a shared flag.
func TestLinuxRAPLMultiZoneWrapMidWindow(t *testing.T) {
	f := newFakePowercap(t, 2)
	r, err := NewLinuxRAPLReader(f.root, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Window 1: zone 0 climbs near its range, zone 1 moves a little.
	f.set(t, 0, 950000)
	f.set(t, 1, 300000)
	if _, err := r.ReadEnergyAt(1); err != nil {
		t.Fatal(err)
	}
	// Window 2: zone 0 wraps (range 1e6 uJ), zone 1 keeps climbing.
	f.set(t, 0, 50000)
	f.set(t, 1, 900000)
	got, err := r.ReadEnergyAt(2)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.95 + 0.30 + ((1.0 - 0.95) + 0.05) + 0.60
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("after zone-0 wrap: %v, want %v", got, want)
	}
	// Window 3: zone 1 wraps too; zone 0 unchanged.
	f.set(t, 1, 100000)
	got, err = r.ReadEnergyAt(3)
	if err != nil {
		t.Fatal(err)
	}
	want += (1.0 - 0.90) + 0.10
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("after zone-1 wrap: %v, want %v", got, want)
	}
}

// Golden: a zone directory vanishing mid-run must surface as the loud
// ErrZoneSetChanged, never as a silently smaller sum.
func TestLinuxRAPLZoneDisappearance(t *testing.T) {
	f := newFakePowercap(t, 2)
	r, err := NewLinuxRAPLReader(f.root, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Retry.Sleep = func(time.Duration) {}
	if _, err := r.ReadEnergyAt(1); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(f.zones[1]); err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadEnergyAt(2)
	if !errors.Is(err, ErrZoneSetChanged) {
		t.Fatalf("err = %v, want ErrZoneSetChanged", err)
	}
}

// A transient read error (file momentarily unreadable) must be retried,
// not fail the sample: the injected Sleep hook repairs the counter file
// between attempts, standing in for the kernel finishing whatever made
// the read fail.
func TestLinuxRAPLTransientReadRetry(t *testing.T) {
	f := newFakePowercap(t, 1)
	r, err := NewLinuxRAPLReader(f.root, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(f.zones[0], "energy_uj")
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	repairs := 0
	r.Retry = linuxsys.RetryPolicy{
		MaxAttempts: 3,
		Sleep: func(time.Duration) {
			repairs++
			f.set(t, 0, 400000)
		},
	}
	got, err := r.ReadEnergyAt(1)
	if err != nil {
		t.Fatalf("retry should have recovered the sample: %v", err)
	}
	if repairs != 1 {
		t.Fatalf("repairs = %d, want exactly 1 retry", repairs)
	}
	if math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("energy after repair: %v, want 0.4", got)
	}
}
