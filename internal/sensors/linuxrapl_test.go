package sensors

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fakePowercap builds a synthetic /sys/class/powercap tree.
type fakePowercap struct {
	root  string
	zones []string
}

func newFakePowercap(t *testing.T, zones int) *fakePowercap {
	t.Helper()
	root := t.TempDir()
	f := &fakePowercap{root: root}
	for z := 0; z < zones; z++ {
		name := "intel-rapl:" + strconv.Itoa(z)
		dir := filepath.Join(root, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		f.zones = append(f.zones, dir)
		f.set(t, z, 0)
		if err := os.WriteFile(filepath.Join(dir, "max_energy_range_uj"), []byte("1000000\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		// A subzone that must NOT be double counted.
		sub := filepath.Join(root, name+":0")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "energy_uj"), []byte("999999999\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func (f *fakePowercap) set(t *testing.T, zone int, uj uint64) {
	t.Helper()
	path := filepath.Join(f.zones[zone], "energy_uj")
	if err := os.WriteFile(path, []byte(strconv.FormatUint(uj, 10)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLinuxRAPLDiscovery(t *testing.T) {
	f := newFakePowercap(t, 2)
	r, err := NewLinuxRAPLReader(f.root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Zones() != 2 {
		t.Fatalf("zones: %d (subzones must be excluded)", r.Zones())
	}
}

func TestLinuxRAPLUnavailable(t *testing.T) {
	if _, err := NewLinuxRAPLReader(filepath.Join(t.TempDir(), "nope"), 0); err == nil {
		t.Error("want error for missing root")
	}
	if _, err := NewLinuxRAPLReader(t.TempDir(), 0); err == nil {
		t.Error("want error for empty powercap dir")
	}
}

func TestLinuxRAPLAccumulates(t *testing.T) {
	f := newFakePowercap(t, 2)
	r, err := NewLinuxRAPLReader(f.root, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.set(t, 0, 500000) // 0.5 J
	f.set(t, 1, 250000) // 0.25 J
	got, err := r.ReadEnergyAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("energy: %v, want 0.75", got)
	}
	// Second read with no counter movement: unchanged.
	got, _ = r.ReadEnergyAt(2)
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("second read: %v", got)
	}
}

func TestLinuxRAPLWrapAround(t *testing.T) {
	f := newFakePowercap(t, 1)
	r, err := NewLinuxRAPLReader(f.root, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.set(t, 0, 900000)
	if _, err := r.ReadEnergyAt(1); err != nil {
		t.Fatal(err)
	}
	// Wrap: max range is 1,000,000 uJ; the counter falls to 100,000.
	f.set(t, 0, 100000)
	got, err := r.ReadEnergyAt(2)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9 + 0.2 // 900k uJ, then (1e6-900k)+100k = 200k uJ
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("wrapped energy: %v, want %v", got, want)
	}
}

func TestLinuxRAPLFixedAdder(t *testing.T) {
	f := newFakePowercap(t, 1)
	r, err := NewLinuxRAPLReader(f.root, 10) // 10 W of non-CPU power
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadEnergyAt(100); err != nil { // anchors the clock
		t.Fatal(err)
	}
	got, err := r.ReadEnergyAt(105) // 5 seconds later
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-50) > 1e-9 {
		t.Fatalf("fixed adder energy: %v, want 50", got)
	}
}

func TestLinuxRAPLBadCounter(t *testing.T) {
	f := newFakePowercap(t, 1)
	r, err := NewLinuxRAPLReader(f.root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(f.zones[0], "energy_uj"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadEnergyAt(1); err == nil {
		t.Error("want error for unparsable counter")
	}
}
