package sensors

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LinuxRAPLReader reads real cumulative package energy from the Linux
// powercap interface (/sys/class/powercap/intel-rapl:*/energy_uj) — the
// same counters the paper reads through MSRs (Sec. 4.2), exposed by the
// kernel. It sums all top-level RAPL domains, handles each counter's
// wrap-around via its max_energy_range_uj, and adds a fixed constant for
// non-CPU components, mirroring the paper's measurement strategy.
//
// Combine it with an OnlineController to run JouleGuard against a real
// machine: the rest of the system only needs this one joule counter.
type LinuxRAPLReader struct {
	FixedW float64 // constant adder (W) for components RAPL cannot see
	root   string
	zones  []raplZone
	accumJ float64
	// wall-clock integration of the fixed adder is the caller's concern in
	// virtual-time settings; for real time we track it from ReadEnergyAt.
	firstT  float64
	haveT   bool
	lastRaw []uint64
}

type raplZone struct {
	energyPath string
	maxRange   uint64
}

// NewLinuxRAPLReader discovers RAPL zones under root (pass "" for the
// system default /sys/class/powercap). It fails cleanly when the interface
// is absent — callers on non-Linux or unprivileged hosts should fall back
// to another Reader.
func NewLinuxRAPLReader(root string, fixedW float64) (*LinuxRAPLReader, error) {
	if root == "" {
		root = "/sys/class/powercap"
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("sensors: powercap unavailable: %w", err)
	}
	r := &LinuxRAPLReader{FixedW: fixedW, root: root}
	var names []string
	for _, e := range entries {
		name := e.Name()
		// Top-level package domains look like intel-rapl:0; subzones
		// (intel-rapl:0:0) are contained in their parent and must not be
		// double counted.
		if strings.HasPrefix(name, "intel-rapl:") && strings.Count(name, ":") == 1 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("sensors: no intel-rapl domains under %s", root)
	}
	sort.Strings(names)
	for _, name := range names {
		zoneDir := filepath.Join(root, name)
		energyPath := filepath.Join(zoneDir, "energy_uj")
		if _, err := os.Stat(energyPath); err != nil {
			return nil, fmt.Errorf("sensors: zone %s: %w", name, err)
		}
		maxRange := uint64(1) << 62
		if raw, err := os.ReadFile(filepath.Join(zoneDir, "max_energy_range_uj")); err == nil {
			if v, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64); err == nil && v > 0 {
				maxRange = v
			}
		}
		r.zones = append(r.zones, raplZone{energyPath: energyPath, maxRange: maxRange})
	}
	r.lastRaw = make([]uint64, len(r.zones))
	for i, z := range r.zones {
		v, err := readCounter(z.energyPath)
		if err != nil {
			return nil, err
		}
		r.lastRaw[i] = v
	}
	return r, nil
}

func readCounter(path string) (uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("sensors: reading %s: %w", path, err)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sensors: parsing %s: %w", path, err)
	}
	return v, nil
}

// Zones returns the number of RAPL package domains discovered.
func (r *LinuxRAPLReader) Zones() int { return len(r.zones) }

// ReadEnergyAt returns cumulative joules since construction: the summed
// package counters (wrap-corrected) plus FixedW integrated over the wall
// time supplied by the caller (seconds on any monotone clock).
func (r *LinuxRAPLReader) ReadEnergyAt(nowSeconds float64) (float64, error) {
	for i, z := range r.zones {
		cur, err := readCounter(z.energyPath)
		if err != nil {
			return 0, err
		}
		prev := r.lastRaw[i]
		var delta uint64
		if cur >= prev {
			delta = cur - prev
		} else {
			// Counter wrapped at max_energy_range_uj.
			delta = z.maxRange - prev + cur
		}
		r.accumJ += float64(delta) / 1e6
		r.lastRaw[i] = cur
	}
	if !r.haveT {
		r.firstT = nowSeconds
		r.haveT = true
	}
	elapsed := nowSeconds - r.firstT
	if elapsed < 0 {
		elapsed = 0
	}
	return r.accumJ + r.FixedW*elapsed, nil
}
