package sensors

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"jouleguard/internal/linuxsys"
)

// ErrZoneSetChanged reports that the set of RAPL package domains changed
// underneath a running reader — a zone directory vanished or appeared
// between samples. Per-zone wrap state is meaningless across such a
// change, so the reader fails loudly instead of silently resuming with a
// corrupted accumulator; callers (the measurement service) surface it
// and rebuild the reader.
var ErrZoneSetChanged = errors.New("sensors: RAPL zone set changed under running reader")

// LinuxRAPLReader reads real cumulative package energy from the Linux
// powercap interface (/sys/class/powercap/intel-rapl:*/energy_uj) — the
// same counters the paper reads through MSRs (Sec. 4.2), exposed by the
// kernel. It sums all top-level RAPL domains, handles each counter's
// wrap-around via its max_energy_range_uj, and adds a fixed constant for
// non-CPU components, mirroring the paper's measurement strategy.
//
// Combine it with an OnlineController to run JouleGuard against a real
// machine: the rest of the system only needs this one joule counter.
type LinuxRAPLReader struct {
	FixedW float64 // constant adder (W) for components RAPL cannot see
	// Retry governs transient energy_uj read errors (a hot-unplugged
	// hwmon, a momentary EIO under firmware update): each zone read is
	// retried with capped exponential backoff before the sample is
	// declared lost. The zero value selects linuxsys defaults.
	Retry linuxsys.RetryPolicy

	root   string
	zones  []raplZone
	accumJ float64
	// wall-clock integration of the fixed adder is the caller's concern in
	// virtual-time settings; for real time we track it from ReadEnergyAt.
	firstT  float64
	haveT   bool
	lastRaw []uint64
}

type raplZone struct {
	name       string
	energyPath string
	maxRange   uint64
}

// discoverZoneNames lists the top-level RAPL package domains under root,
// sorted. Subzones (intel-rapl:0:0) are contained in their parent and
// must not be double counted, so only single-colon names qualify.
func discoverZoneNames(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("sensors: powercap unavailable: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "intel-rapl:") && strings.Count(name, ":") == 1 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// NewLinuxRAPLReader discovers RAPL zones under root (pass "" for the
// system default /sys/class/powercap). It fails cleanly when the interface
// is absent — callers on non-Linux or unprivileged hosts should fall back
// to another Reader.
func NewLinuxRAPLReader(root string, fixedW float64) (*LinuxRAPLReader, error) {
	if root == "" {
		root = "/sys/class/powercap"
	}
	names, err := discoverZoneNames(root)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("sensors: no intel-rapl domains under %s", root)
	}
	r := &LinuxRAPLReader{FixedW: fixedW, root: root}
	for _, name := range names {
		zoneDir := filepath.Join(root, name)
		energyPath := filepath.Join(zoneDir, "energy_uj")
		if _, err := os.Stat(energyPath); err != nil {
			return nil, fmt.Errorf("sensors: zone %s: %w", name, err)
		}
		maxRange := uint64(1) << 62
		if raw, err := os.ReadFile(filepath.Join(zoneDir, "max_energy_range_uj")); err == nil {
			if v, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64); err == nil && v > 0 {
				maxRange = v
			}
		}
		r.zones = append(r.zones, raplZone{name: name, energyPath: energyPath, maxRange: maxRange})
	}
	r.lastRaw = make([]uint64, len(r.zones))
	for i, z := range r.zones {
		v, err := readCounter(z.energyPath)
		if err != nil {
			return nil, err
		}
		r.lastRaw[i] = v
	}
	return r, nil
}

func readCounter(path string) (uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("sensors: reading %s: %w", path, err)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sensors: parsing %s: %w", path, err)
	}
	return v, nil
}

// Zones returns the number of RAPL package domains discovered.
func (r *LinuxRAPLReader) Zones() int { return len(r.zones) }

// readCounterRetry reads one zone's counter under the retry policy. When
// every attempt fails it re-scans the powercap directory: a changed zone
// set means the hardware inventory moved underneath us (hotplug, driver
// reload) and the error becomes the loud, terminal ErrZoneSetChanged;
// an unchanged set means a genuinely transient-but-persistent fault and
// the read error itself propagates (callers treat that sample as lost).
func (r *LinuxRAPLReader) readCounterRetry(z raplZone) (uint64, error) {
	var v uint64
	_, err := r.Retry.Do(func() error {
		var e error
		v, e = readCounter(z.energyPath)
		return e
	})
	if err == nil {
		return v, nil
	}
	if names, serr := discoverZoneNames(r.root); serr == nil {
		if !sameZoneSet(names, r.zones) {
			return 0, fmt.Errorf("%w: zone %s failed and powercap now lists %v: %v",
				ErrZoneSetChanged, z.name, names, err)
		}
	}
	return 0, err
}

// sameZoneSet reports whether a freshly discovered (sorted) name list
// matches the zones the reader was built over.
func sameZoneSet(names []string, zones []raplZone) bool {
	if len(names) != len(zones) {
		return false
	}
	for i, z := range zones {
		if names[i] != z.name {
			return false
		}
	}
	return true
}

// ReadEnergyAt returns cumulative joules since construction: the summed
// package counters (wrap-corrected) plus FixedW integrated over the wall
// time supplied by the caller (seconds on any monotone clock).
func (r *LinuxRAPLReader) ReadEnergyAt(nowSeconds float64) (float64, error) {
	for i, z := range r.zones {
		cur, err := r.readCounterRetry(z)
		if err != nil {
			return 0, err
		}
		prev := r.lastRaw[i]
		var delta uint64
		if cur >= prev {
			delta = cur - prev
		} else {
			// Counter wrapped at max_energy_range_uj.
			delta = z.maxRange - prev + cur
		}
		r.accumJ += float64(delta) / 1e6
		r.lastRaw[i] = cur
	}
	if !r.haveT {
		r.firstT = nowSeconds
		r.haveT = true
	}
	elapsed := nowSeconds - r.firstT
	if elapsed < 0 {
		elapsed = 0
	}
	return r.accumJ + r.FixedW*elapsed, nil
}
