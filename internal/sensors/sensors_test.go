package sensors

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRAPLAccumulates(t *testing.T) {
	var r RAPL
	r.Deposit(1) // 1 J = 65536 units
	if got := r.Read(); got != 65536 {
		t.Fatalf("counter after 1 J: %d", got)
	}
	r.Deposit(0.5)
	if got := r.Read(); got != 65536+32768 {
		t.Fatalf("counter after 1.5 J: %d", got)
	}
}

func TestRAPLSubUnitCarry(t *testing.T) {
	var r RAPL
	// Deposit many sub-unit amounts; total must not lose energy.
	n := 100000
	per := RAPLUnit / 3
	for i := 0; i < n; i++ {
		r.Deposit(per)
	}
	want := per * float64(n) / RAPLUnit
	got := float64(r.Read())
	if math.Abs(got-want) > 2 {
		t.Fatalf("carry lost energy: %v units, want %v", got, want)
	}
}

func TestRAPLIgnoresInvalid(t *testing.T) {
	var r RAPL
	r.Deposit(-1)
	r.Deposit(math.NaN())
	if r.Read() != 0 {
		t.Fatalf("counter moved on invalid deposits: %d", r.Read())
	}
}

func TestEnergyBetweenWrapAround(t *testing.T) {
	// A counter that wrapped: prev near the top, cur small.
	prev := uint32(0xFFFFFF00)
	cur := uint32(0x100)
	want := float64(0x200) * RAPLUnit
	if got := EnergyBetween(prev, cur); math.Abs(got-want) > 1e-12 {
		t.Fatalf("wrap-around delta: %v, want %v", got, want)
	}
	if got := EnergyBetween(100, 300); math.Abs(got-200*RAPLUnit) > 1e-15 {
		t.Fatalf("plain delta: %v", got)
	}
	if EnergyBetween(7, 7) != 0 {
		t.Fatal("no-op delta")
	}
}

// Property: for any sequence of reads, summing EnergyBetween over
// consecutive reads reconstructs the deposited energy (within quantisation).
func TestRAPLReconstructionProperty(t *testing.T) {
	f := func(deposits []uint16) bool {
		var r RAPL
		prev := r.Read()
		var reconstructed, trueJ float64
		for _, d := range deposits {
			j := float64(d) / 1000 // up to ~65 J per deposit
			r.Deposit(j)
			trueJ += j
			cur := r.Read()
			reconstructed += EnergyBetween(prev, cur)
			prev = cur
		}
		return math.Abs(reconstructed-trueJ) < RAPLUnit*float64(len(deposits)+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestINA231Quantisation(t *testing.T) {
	var s INA231
	s.Set(3.14159)
	if got := s.PowerW(); math.Abs(got-3.142) > 1e-9 {
		t.Fatalf("PowerW: %v", got)
	}
	s.Set(-5)
	if s.PowerW() != 0 {
		t.Fatal("negative power must clamp to 0")
	}
	s.Set(math.NaN())
	if s.PowerW() != 0 {
		t.Fatal("NaN power must clamp to 0")
	}
}

func TestExternalMeterSampling(t *testing.T) {
	m, err := NewExternalMeter(1.0)
	if err != nil {
		t.Fatal(err)
	}
	// 2.5 seconds at 100 W in 0.1 s slices.
	for i := 0; i < 25; i++ {
		m.Advance(100, 0.1)
	}
	if got := m.EnergyJ(); math.Abs(got-250) > 1e-9 {
		t.Fatalf("energy: %v", got)
	}
	if n := len(m.Samples()); n != 2 {
		t.Fatalf("samples at 1 Hz over 2.5 s: %d", n)
	}
	if m.LastPowerW() != 100 {
		t.Fatalf("last power: %v", m.LastPowerW())
	}
}

func TestExternalMeterValidates(t *testing.T) {
	if _, err := NewExternalMeter(0); err == nil {
		t.Fatal("want error for zero period")
	}
	m, _ := NewExternalMeter(1)
	m.Advance(100, -1)
	m.Advance(math.NaN(), 1)
	if m.EnergyJ() != 0 {
		t.Fatal("invalid advances must be ignored")
	}
}

func TestFullSystemReaderReconstruction(t *testing.T) {
	// Perfect sensor (no leak): reconstruction must match true energy.
	f, err := NewFullSystemReader(85, 0)
	if err != nil {
		t.Fatal(err)
	}
	var trueJ float64
	for i := 0; i < 1000; i++ {
		w := 150 + 50*math.Sin(float64(i)/50)
		f.Advance(w, 0.01)
		trueJ += w * 0.01
	}
	got := f.ReadEnergy()
	if math.Abs(got-trueJ) > 0.01 {
		t.Fatalf("reconstructed %v J, true %v J", got, trueJ)
	}
}

func TestFullSystemReaderLeakUnderestimates(t *testing.T) {
	f, err := NewFullSystemReader(85, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var trueJ float64
	for i := 0; i < 500; i++ {
		f.Advance(200, 0.01)
		trueJ += 200 * 0.01
	}
	got := f.ReadEnergy()
	if got >= trueJ {
		t.Fatalf("leaky sensor should under-report: %v >= %v", got, trueJ)
	}
	// The error must be exactly the leak share of package energy.
	wantErr := trueJ * 0.05 * (200.0 - 85) / 200
	if math.Abs((trueJ-got)-wantErr) > 0.05 {
		t.Fatalf("leak error %v, want %v", trueJ-got, wantErr)
	}
}

func TestFullSystemReaderValidates(t *testing.T) {
	if _, err := NewFullSystemReader(-1, 0); err == nil {
		t.Fatal("want error for negative adder")
	}
	if _, err := NewFullSystemReader(1, 1); err == nil {
		t.Fatal("want error for leak of 1")
	}
}

func TestFullSystemReaderBelowFixed(t *testing.T) {
	f, _ := NewFullSystemReader(85, 0)
	f.Advance(50, 1) // true power below the adder: MSR sees zero
	if got := f.RAPLCounter(); got != 0 {
		t.Fatalf("counter: %d", got)
	}
	if got := f.ReadEnergy(); math.Abs(got-85) > 1e-9 {
		t.Fatalf("reconstruction: %v", got)
	}
}

func TestINAReaderReconstruction(t *testing.T) {
	r := NewINAReader(0.3, "big", "LITTLE", "DRAM", "GPU")
	var trueJ float64
	for i := 0; i < 2000; i++ {
		w := 4 + 2*math.Sin(float64(i)/100)
		r.Advance(w, 0.005)
		trueJ += w * 0.005
	}
	got := r.ReadEnergy()
	// Millisecond-granularity rail quantisation: small error allowed.
	if math.Abs(got-trueJ) > trueJ*0.01 {
		t.Fatalf("reconstructed %v J, true %v J", got, trueJ)
	}
}

func TestForPlatform(t *testing.T) {
	for _, name := range []string{"Mobile", "Tablet", "Server"} {
		a, err := ForPlatform(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a.Advance(100, 1)
		if a.ReadEnergy() <= 0 {
			t.Fatalf("%s: no energy after advance", name)
		}
	}
	if _, err := ForPlatform("Toaster"); err == nil {
		t.Fatal("want error for unknown platform")
	}
}
