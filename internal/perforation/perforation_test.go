package perforation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewLoopValidates(t *testing.T) {
	for _, bad := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := NewLoop(bad, Interleave); err == nil {
			t.Errorf("NewLoop(%v): want error", bad)
		}
	}
	if _, err := NewLoop(0.5, Strategy(9)); err == nil {
		t.Error("want error for unknown strategy")
	}
	if _, err := NewLoop(0, Interleave); err != nil {
		t.Errorf("rate 0 should be valid: %v", err)
	}
}

func TestKept(t *testing.T) {
	cases := []struct {
		rate float64
		n    int
		want int
	}{
		{0, 10, 10},
		{0.5, 10, 5},
		{0.9, 10, 1},
		{0.99, 10, 1}, // never zero iterations
		{0.25, 4, 3},
		{0.5, 0, 0},
		{0.5, -3, 0},
		{0.3, 1, 1},
	}
	for _, tc := range cases {
		l, err := NewLoop(tc.rate, Interleave)
		if err != nil {
			t.Fatal(err)
		}
		if got := l.Kept(tc.n); got != tc.want {
			t.Errorf("Kept(rate=%v, n=%d) = %d, want %d", tc.rate, tc.n, got, tc.want)
		}
	}
}

func TestRangeTruncate(t *testing.T) {
	l, _ := NewLoop(0.5, Truncate)
	var got []int
	n := l.Range(10, func(i int) { got = append(got, i) })
	if n != 5 || len(got) != 5 {
		t.Fatalf("executed %d iterations: %v", n, got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("truncate must keep the prefix, got %v", got)
		}
	}
}

func TestRangeInterleaveSpacing(t *testing.T) {
	l, _ := NewLoop(0.75, Interleave)
	got := l.Indices(16) // keep 4 of 16, evenly spread
	if len(got) != 4 {
		t.Fatalf("kept %d: %v", len(got), got)
	}
	want := []int{0, 4, 8, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave indices: got %v, want %v", got, want)
		}
	}
}

func TestRangeFullLoop(t *testing.T) {
	l, _ := NewLoop(0, Interleave)
	got := l.Indices(7)
	if len(got) != 7 {
		t.Fatalf("full loop kept %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("full loop must visit every index in order: %v", got)
		}
	}
}

func TestSpeedup(t *testing.T) {
	l, _ := NewLoop(0.5, Interleave)
	if got := l.Speedup(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Speedup: %v", got)
	}
	l0, _ := NewLoop(0, Interleave)
	if l0.Speedup() != 1 {
		t.Fatalf("rate-0 speedup: %v", l0.Speedup())
	}
}

func TestRateLadder(t *testing.T) {
	rates, err := RateLadder(5, 0.875) // max speedup 8
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 5 || rates[0] != 0 {
		t.Fatalf("ladder: %v", rates)
	}
	// Speedups must be geometric: 1, 8^(1/4), 8^(1/2), 8^(3/4), 8.
	for i, r := range rates {
		want := math.Pow(8, float64(i)/4)
		got := 1 / (1 - r)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("rung %d speedup %v, want %v", i, got, want)
		}
	}
}

func TestRateLadderValidates(t *testing.T) {
	if _, err := RateLadder(0, 0.5); err == nil {
		t.Error("want error for zero rungs")
	}
	if _, err := RateLadder(3, 1); err == nil {
		t.Error("want error for rate 1")
	}
	if _, err := RateLadder(3, -0.1); err == nil {
		t.Error("want error for negative rate")
	}
	one, err := RateLadder(1, 0.9)
	if err != nil || len(one) != 1 || one[0] != 0 {
		t.Fatalf("single-rung ladder: %v %v", one, err)
	}
}

// Properties: indices are strictly increasing, within range, unique, and
// their count matches Kept for every strategy and rate.
func TestLoopIndicesProperty(t *testing.T) {
	f := func(rateRaw float64, nRaw uint16, strat bool) bool {
		rate := math.Mod(math.Abs(rateRaw), 0.999)
		if math.IsNaN(rate) {
			return true
		}
		n := int(nRaw%2000) + 1
		s := Interleave
		if strat {
			s = Truncate
		}
		l, err := NewLoop(rate, s)
		if err != nil {
			return false
		}
		idx := l.Indices(n)
		if len(idx) != l.Kept(n) {
			return false
		}
		for i, v := range idx {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && v <= idx[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
