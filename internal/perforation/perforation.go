// Package perforation is the Loop Perforation substrate (Sidiroglou et al.,
// ESEC/FSE'11): it transforms loops to execute only a subset of their
// iterations, trading accuracy for performance. The paper builds canneal,
// ferret and streamcluster with this framework (Sec. 4.1).
//
// A perforated loop is described by a rate r in [0, 1): the fraction of
// iterations skipped. Rate 0 runs the full loop. The package offers the two
// perforation strategies from the original work — interleaved (skip evenly
// through the iteration space, the default because it usually distorts
// results least) and truncation (run the prefix, drop the tail) — plus a
// helper for generating the rate ladders used as application knobs.
package perforation

import (
	"fmt"
	"math"
)

// Strategy selects which iterations of a perforated loop execute.
type Strategy int

const (
	// Interleave keeps iterations evenly spaced through the index range.
	Interleave Strategy = iota
	// Truncate keeps the leading iterations and drops the tail.
	Truncate
)

// Loop is a perforated loop specification.
type Loop struct {
	Rate     float64 // fraction of iterations skipped, in [0, 1)
	Strategy Strategy
}

// NewLoop validates and builds a perforated loop.
func NewLoop(rate float64, s Strategy) (Loop, error) {
	if rate < 0 || rate >= 1 || math.IsNaN(rate) {
		return Loop{}, fmt.Errorf("perforation: rate %v outside [0, 1)", rate)
	}
	if s != Interleave && s != Truncate {
		return Loop{}, fmt.Errorf("perforation: unknown strategy %d", s)
	}
	return Loop{Rate: rate, Strategy: s}, nil
}

// Kept returns how many of n iterations execute under the loop's rate:
// ceil(n * (1-rate)), never less than 1 for n >= 1 (a loop that runs zero
// iterations would produce no result at all, which perforation forbids).
func (l Loop) Kept(n int) int {
	if n <= 0 {
		return 0
	}
	k := int(math.Ceil(float64(n) * (1 - l.Rate)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Range invokes body for each executed iteration index in [0, n), according
// to the strategy. It returns the number of iterations executed.
func (l Loop) Range(n int, body func(i int)) int {
	k := l.Kept(n)
	if k == 0 {
		return 0
	}
	switch l.Strategy {
	case Truncate:
		for i := 0; i < k; i++ {
			body(i)
		}
	default: // Interleave: largest-remainder spacing across [0, n).
		step := float64(n) / float64(k)
		for j := 0; j < k; j++ {
			body(int(float64(j) * step))
		}
	}
	return k
}

// Indices returns the executed iteration indices as a slice; a convenience
// wrapper around Range for kernels that need random access.
func (l Loop) Indices(n int) []int {
	out := make([]int, 0, l.Kept(n))
	l.Range(n, func(i int) { out = append(out, i) })
	return out
}

// Speedup returns the nominal speedup of the perforated loop over the full
// loop, assuming uniform per-iteration cost: n / kept(n) in the limit,
// i.e. 1/(1-rate).
func (l Loop) Speedup() float64 { return 1 / (1 - l.Rate) }

// RateLadder builds n perforation rates from 0 (exact) up to maxRate,
// spaced so the nominal speedups 1/(1-rate) are geometrically spaced — the
// shape Loop Perforation uses for its accuracy/performance sweeps. The
// first entry is always 0.
func RateLadder(n int, maxRate float64) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("perforation: ladder needs at least one rung")
	}
	if maxRate < 0 || maxRate >= 1 {
		return nil, fmt.Errorf("perforation: max rate %v outside [0, 1)", maxRate)
	}
	out := make([]float64, n)
	if n == 1 {
		return out, nil
	}
	maxSpeed := 1 / (1 - maxRate)
	for i := 1; i < n; i++ {
		s := math.Pow(maxSpeed, float64(i)/float64(n-1))
		out[i] = 1 - 1/s
	}
	return out, nil
}
