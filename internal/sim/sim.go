// Package sim is the discrete-event testbed: it binds an approximate
// application kernel, a simulated platform, the platform's power
// instrumentation and a governor (JouleGuard or a baseline) into a single
// experiment run over virtual time. Each iteration executes the kernel for
// real (its accuracy is measured, not synthesised), converts the work it
// performed into virtual seconds via the platform's speed model, integrates
// power into the sensors, and hands the governor its feedback.
package sim

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"jouleguard/internal/apps"
	"jouleguard/internal/faults"
	"jouleguard/internal/guard"
	"jouleguard/internal/heartbeats"
	"jouleguard/internal/platform"
	"jouleguard/internal/sensors"
	"jouleguard/internal/workload"
)

// Feedback is what a governor observes after each iteration.
type Feedback struct {
	Iter           int
	AppConfig      int
	SysConfig      int
	Work           float64 // kernel work units executed this iteration
	Duration       float64 // virtual seconds this iteration took
	Power          float64 // measured average power this iteration (W)
	Energy         float64 // cumulative measured energy (J), from the sensors
	Accuracy       float64 // measured accuracy of this iteration's output
	IterationsDone int     // iterations completed so far (including this one)
	// Estimated marks an iteration whose measurement was rejected or
	// missing: Power and Energy carry the sensing layer's model-based
	// fallback, good enough to keep the budget ledger honest but not a
	// real observation to learn from.
	Estimated bool
}

// Sane reports whether the measurement fields are finite and physically
// plausible. Governors must treat insane feedback as a corrupt sample —
// one NaN folded into an EWMA or Kalman filter poisons it permanently.
func (fb Feedback) Sane() bool {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	return finite(fb.Duration) && fb.Duration > 0 &&
		finite(fb.Power) && fb.Power >= 0 &&
		finite(fb.Energy) && fb.Energy >= 0 &&
		finite(fb.Accuracy) && finite(fb.Work)
}

// PowerScaler is implemented by approximate-hardware applications
// (Sec. 3.7): the configuration scales the platform's dynamic power rather
// than the computation's duration.
type PowerScaler interface {
	PowerScale(cfg int) float64
}

// Governor decides configurations and observes feedback.
type Governor interface {
	// Decide returns the application and system configuration to use for
	// iteration iter.
	Decide(iter int) (appCfg, sysCfg int)
	// Observe delivers the measured feedback for the iteration just run.
	Observe(fb Feedback)
}

// Record captures one run.
type Record struct {
	AppName       string
	PlatformName  string
	Iterations    int
	Time          float64 // total virtual seconds
	TrueEnergy    float64 // joules, ground truth
	MeasEnergy    float64 // joules, as the sensors reconstructed
	Accuracies    []float64
	Powers        []float64
	Durations     []float64
	EnergyPerIter []float64 // true energy per iteration
	AppConfigs    []int     // configurations actually in effect (≠ requested under actuator faults)
	SysConfigs    []int

	// Fault-tolerance telemetry (zero on fault-free runs).
	ActuatorFailures int // transient actuation errors the run absorbed
	GuardAccepted    int // samples the sensing guard accepted
	GuardRejected    int // samples the sensing guard rejected or lost
}

// MeanAccuracy returns the run's average measured accuracy.
func (r *Record) MeanAccuracy() float64 {
	if len(r.Accuracies) == 0 {
		return 0
	}
	var s float64
	for _, a := range r.Accuracies {
		s += a
	}
	return s / float64(len(r.Accuracies))
}

// EnergyPerIterAvg returns true energy divided by iterations.
func (r *Record) EnergyPerIterAvg() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return r.TrueEnergy / float64(r.Iterations)
}

// WriteCSV emits the per-iteration record for offline analysis/plotting.
func (r *Record) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "iter,energy_j,power_w,duration_s,accuracy,app_config,sys_config"); err != nil {
		return err
	}
	for i := 0; i < r.Iterations; i++ {
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g,%g,%d,%d\n",
			i, r.EnergyPerIter[i], r.Powers[i], r.Durations[i],
			r.Accuracies[i], r.AppConfigs[i], r.SysConfigs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Engine runs experiments.
type Engine struct {
	App                   apps.App
	Platform              *platform.Platform
	Profile               platform.AppProfile
	Reader                sensors.Advancer
	Meter                 *sensors.ExternalMeter // authoritative whole-run energy
	Trace                 *workload.Trace        // optional external difficulty trace
	RateNoise, PowerNoise float64                // multiplicative log-normal sigmas
	HB                    *heartbeats.Monitor    // per-iteration heartbeat stream
	// Disturb, when set, returns per-iteration multiplicative disturbances
	// on rate and power — external events (a co-located job stealing
	// cycles, a thermal excursion raising power) no model predicted.
	Disturb func(iter int) (rateMul, powerMul float64)
	// Faults, when set, corrupts the engine's measurement and actuation
	// channels: the power stream the sensors record, the clock the
	// governor's durations come from, and whether a requested
	// configuration actually takes effect. Unlike Disturb, which changes
	// the world, Faults change only what the control loop perceives and
	// can actuate — ground truth in the Record stays honest.
	Faults *faults.Injector
	// Guard, when set, filters the sensed power stream before it reaches
	// the governor: rejected or missing samples are replaced by a
	// model-based estimate and the governor's cumulative energy comes
	// from the guard's cleaned ledger.
	Guard *guard.Sensor
	rng   *rand.Rand
}

// New builds an engine for (app, platform) with the paper's measurement
// setup and mild measurement noise, deterministically seeded.
func New(app apps.App, plat *platform.Platform, seed int64) (*Engine, error) {
	prof, err := platform.ProfileFor(app.Name())
	if err != nil {
		return nil, err
	}
	reader, err := sensors.ForPlatform(plat.Name)
	if err != nil {
		return nil, err
	}
	meter, err := sensors.NewExternalMeter(1.0)
	if err != nil {
		return nil, err
	}
	hb, err := heartbeats.NewMonitor(20)
	if err != nil {
		return nil, err
	}
	return &Engine{
		App:        app,
		Platform:   plat,
		Profile:    prof,
		Reader:     reader,
		Meter:      meter,
		RateNoise:  0.015,
		PowerNoise: 0.02,
		HB:         hb,
		rng:        rand.New(rand.NewSource(seed)),
	}, nil
}

// Run executes iters iterations under the governor and returns the record.
func (e *Engine) Run(iters int, gov Governor) (*Record, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("sim: iteration count %d must be positive", iters)
	}
	rec := &Record{
		AppName:      e.App.Name(),
		PlatformName: e.Platform.Name,
		// The run length is known up front; growing these by append would
		// reallocate ~log2(iters) times per trace, six traces per run.
		Accuracies:    make([]float64, 0, iters),
		Powers:        make([]float64, 0, iters),
		Durations:     make([]float64, 0, iters),
		EnergyPerIter: make([]float64, 0, iters),
		AppConfigs:    make([]int, 0, iters),
		SysConfigs:    make([]int, 0, iters),
	}
	// The configuration physically in effect: actuator faults can leave
	// the machine where it was instead of where the governor asked.
	actApp, actSys := e.App.DefaultConfig(), e.Platform.DefaultConfig()
	var lastSensed float64 // sample-and-hold for lost readings
	haveSensed := false
	for i := 0; i < iters; i++ {
		appCfg, sysCfg := gov.Decide(i)
		if appCfg < 0 || appCfg >= e.App.NumConfigs() {
			return nil, fmt.Errorf("sim: governor chose app config %d of %d", appCfg, e.App.NumConfigs())
		}
		if sysCfg < 0 || sysCfg >= e.Platform.NumConfigs() {
			return nil, fmt.Errorf("sim: governor chose system config %d of %d", sysCfg, e.Platform.NumConfigs())
		}
		prevApp, prevSys := actApp, actSys
		actApp, actSys = appCfg, sysCfg
		if e.Faults != nil {
			got, aerr := e.Faults.Actuate(i, faults.Pair{App: appCfg, Sys: sysCfg}, faults.Pair{App: prevApp, Sys: prevSys})
			if aerr != nil {
				rec.ActuatorFailures++
			}
			if got.App >= 0 && got.App < e.App.NumConfigs() && got.Sys >= 0 && got.Sys < e.Platform.NumConfigs() {
				actApp, actSys = got.App, got.Sys
			}
		}
		work, acc := e.App.Step(actApp, i)
		if e.Trace != nil {
			// External difficulty multiplier for kernels that do not model
			// scene content natively.
			work *= e.Trace.Cost(i)
		}
		rate := e.Platform.Rate(actSys, e.Profile) * workload.LogNormal(e.rng, e.RateNoise)
		power := e.Platform.Power(actSys, e.Profile) * workload.LogNormal(e.rng, e.PowerNoise)
		if e.Disturb != nil {
			rm, pm := e.Disturb(i)
			if rm > 0 {
				rate *= rm
			}
			if pm > 0 {
				power *= pm
			}
		}
		if ps, ok := e.App.(PowerScaler); ok {
			// Approximate hardware scales the dynamic share of power and
			// leaves timing untouched (Sec. 3.7).
			idle := e.Platform.IdleW + e.Platform.UncoreW
			if s := ps.PowerScale(actApp); power > idle && s > 0 && s <= 1 {
				power = idle + (power-idle)*s
			}
		}
		dur := work / rate
		// What the instruments see: the sensed power may be corrupted or
		// lost, and the observed duration comes from a possibly faulty
		// clock. Ground truth (power, dur) still drives the physics.
		obsDur := dur
		durEstimated := false
		sensed, sampleOK := power, true
		if e.Faults != nil {
			obsDur = e.Faults.Interval(i, rec.Time, dur)
			// Duration plausibility: a jittered or backwards clock can
			// report a non-positive or wildly wrong interval. Substituting
			// the model duration (and flagging the sample as estimated)
			// keeps the energy ledger from silently dropping joules —
			// integrating power over a zero interval counts nothing and
			// the budget accounting would drift unsafe.
			modelDur := work / e.Platform.Rate(actSys, e.Profile)
			if math.IsNaN(obsDur) || math.IsInf(obsDur, 0) ||
				obsDur < modelDur/4 || obsDur > modelDur*4 {
				obsDur = modelDur
				durEstimated = true
			}
			sensed, sampleOK = e.Faults.SensePower(i, power)
		}
		if sampleOK {
			lastSensed, haveSensed = sensed, true
		}
		deposit := sensed
		if !sampleOK {
			// A lost sample leaves the instrument holding its last value.
			deposit = 0
			if haveSensed {
				deposit = lastSensed
			}
		}
		e.Reader.Advance(deposit, dur)
		e.Meter.Advance(power, dur)
		rec.Time += dur
		rec.TrueEnergy += power * dur
		if _, err := e.HB.Beat(rec.Time, actApp); err != nil {
			return nil, fmt.Errorf("sim: heartbeat: %w", err)
		}
		rec.Iterations++
		rec.Accuracies = append(rec.Accuracies, acc)
		rec.Powers = append(rec.Powers, power)
		rec.Durations = append(rec.Durations, dur)
		rec.EnergyPerIter = append(rec.EnergyPerIter, power*dur)
		rec.AppConfigs = append(rec.AppConfigs, actApp)
		rec.SysConfigs = append(rec.SysConfigs, actSys)
		rec.MeasEnergy = e.Reader.ReadEnergy()
		fbPower, fbEnergy, estimated := deposit, rec.MeasEnergy, !sampleOK
		fbDur := obsDur
		if e.Guard != nil {
			if actApp != prevApp || actSys != prevSys {
				e.Guard.NoteActuation()
			}
			e.Guard.SetModelPower(e.Platform.Power(actSys, e.Profile))
			var v guard.Verdict
			if sampleOK {
				v = e.Guard.Observe(sensed, obsDur)
			} else {
				v = e.Guard.Missing(obsDur)
			}
			fbPower, fbEnergy, estimated = v.Power, v.Energy, !v.Accepted
			// The rate path gets the median-filtered interval (jitter on
			// 1/D is biased); the energy ledger already integrated the raw
			// interval, where the noise is unbiased.
			fbDur = e.Guard.Interval(obsDur, work/e.Platform.Rate(actSys, e.Profile))
		}
		estimated = estimated || durEstimated
		gov.Observe(Feedback{
			Iter: i,
			// The hardened actuation pipeline verifies every request by
			// reading the applied configuration back (a register/sysfs
			// read), so feedback is attributed to the configuration that
			// actually ran. Without readback a silently dropped or delayed
			// actuation would credit one configuration with another's rate
			// and power, and those mis-attributed samples poison the
			// learner's estimates for the rest of the run.
			AppConfig:      actApp,
			SysConfig:      actSys,
			Work:           work,
			Duration:       fbDur,
			Power:          fbPower,
			Energy:         fbEnergy,
			Accuracy:       acc,
			IterationsDone: i + 1,
			Estimated:      estimated,
		})
	}
	if e.Guard != nil {
		rec.GuardAccepted, rec.GuardRejected = e.Guard.Counts()
	}
	return rec, nil
}

// DefaultBaseline measures the application in its default configuration on
// the platform's default configuration (Sec. 5.2: "we first measure
// accuracy and energy consumption in the default configuration") and
// returns the true energy per iteration and the mean iteration rate.
func DefaultBaseline(app apps.App, plat *platform.Platform, iters int, seed int64) (energyPerIter, iterRate, power float64, err error) {
	e, err := New(app, plat, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	rec, err := e.Run(iters, FixedGovernor{AppCfg: app.DefaultConfig(), SysCfg: plat.DefaultConfig()})
	if err != nil {
		return 0, 0, 0, err
	}
	return rec.TrueEnergy / float64(rec.Iterations),
		float64(rec.Iterations) / rec.Time,
		rec.TrueEnergy / rec.Time,
		nil
}

// FixedGovernor pins both configurations — the "out of the box" run.
type FixedGovernor struct {
	AppCfg, SysCfg int
}

// Decide implements Governor.
func (g FixedGovernor) Decide(int) (int, int) { return g.AppCfg, g.SysCfg }

// Observe implements Governor.
func (g FixedGovernor) Observe(Feedback) {}
