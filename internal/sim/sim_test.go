package sim

import (
	"math"
	"strings"
	"testing"

	"jouleguard/internal/apps"
	"jouleguard/internal/platform"
	"jouleguard/internal/workload"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	app, err := apps.New("radar")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(app, platform.Tablet(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRunDefaultConfig(t *testing.T) {
	e := newEngine(t)
	gov := FixedGovernor{AppCfg: e.App.DefaultConfig(), SysCfg: e.Platform.DefaultConfig()}
	rec, err := e.Run(100, gov)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Iterations != 100 || len(rec.Accuracies) != 100 {
		t.Fatalf("iterations: %d", rec.Iterations)
	}
	if rec.TrueEnergy <= 0 || rec.Time <= 0 {
		t.Fatalf("energy %v time %v", rec.TrueEnergy, rec.Time)
	}
	if acc := rec.MeanAccuracy(); math.Abs(acc-1) > 1e-9 {
		t.Fatalf("default accuracy: %v", acc)
	}
	// Power must hover around the platform model's prediction.
	want := e.Platform.Power(e.Platform.DefaultConfig(), e.Profile)
	got := rec.TrueEnergy / rec.Time
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("mean power %v, model %v", got, want)
	}
}

func TestMeasuredEnergyTracksTruth(t *testing.T) {
	e := newEngine(t)
	rec, err := e.Run(200, FixedGovernor{AppCfg: 0, SysCfg: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The sensor reconstruction (RAPL + fixed adder on Tablet) must be
	// within a few percent of ground truth.
	if rel := math.Abs(rec.MeasEnergy-rec.TrueEnergy) / rec.TrueEnergy; rel > 0.05 {
		t.Fatalf("measured energy off by %.1f%%", rel*100)
	}
	// And the external meter integrates the same truth exactly.
	if math.Abs(e.Meter.EnergyJ()-rec.TrueEnergy) > 1e-9*rec.TrueEnergy {
		t.Fatalf("external meter %v, truth %v", e.Meter.EnergyJ(), rec.TrueEnergy)
	}
}

func TestRunValidates(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Run(0, FixedGovernor{}); err == nil {
		t.Error("want error for zero iterations")
	}
	if _, err := e.Run(10, FixedGovernor{AppCfg: -1, SysCfg: 0}); err == nil {
		t.Error("want error for bad app config")
	}
	if _, err := e.Run(10, FixedGovernor{AppCfg: 0, SysCfg: 99999}); err == nil {
		t.Error("want error for bad sys config")
	}
}

func TestDeterministicRuns(t *testing.T) {
	app, _ := apps.New("radar")
	e1, _ := New(app, platform.Tablet(), 42)
	e2, _ := New(app, platform.Tablet(), 42)
	gov := FixedGovernor{AppCfg: 3, SysCfg: 20}
	r1, err := e1.Run(50, gov)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := e2.Run(50, gov)
	if r1.TrueEnergy != r2.TrueEnergy || r1.Time != r2.Time {
		t.Fatal("same seed produced different runs")
	}
	e3, _ := New(app, platform.Tablet(), 43)
	r3, _ := e3.Run(50, gov)
	if r3.TrueEnergy == r1.TrueEnergy {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestExternalTraceScalesWork(t *testing.T) {
	app, _ := apps.New("radar")
	plain, _ := New(app, platform.Tablet(), 5)
	heavy, _ := New(app, platform.Tablet(), 5)
	tr, err := workload.NewTrace(workload.Phase{Name: "hard", Iterations: 50, Cost: 2})
	if err != nil {
		t.Fatal(err)
	}
	heavy.Trace = tr
	gov := FixedGovernor{AppCfg: 0, SysCfg: 20}
	rp, _ := plain.Run(50, gov)
	rh, _ := heavy.Run(50, gov)
	ratio := rh.Time / rp.Time
	if math.Abs(ratio-2) > 0.1 {
		t.Fatalf("trace cost 2 gave time ratio %v", ratio)
	}
}

func TestDefaultBaseline(t *testing.T) {
	app, _ := apps.New("radar")
	epi, rate, power, err := DefaultBaseline(app, platform.Tablet(), 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	if epi <= 0 || rate <= 0 || power <= 0 {
		t.Fatalf("baseline: epi=%v rate=%v power=%v", epi, rate, power)
	}
	if math.Abs(epi-power/rate) > 1e-9*epi {
		t.Fatalf("baseline identities violated: %v vs %v", epi, power/rate)
	}
}

func TestRecordCSV(t *testing.T) {
	e := newEngine(t)
	rec, err := e.Run(5, FixedGovernor{AppCfg: 1, SysCfg: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("csv lines: %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "iter,energy_j") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.HasSuffix(lines[1], ",1,3") {
		t.Fatalf("row: %q", lines[1])
	}
}

func TestDisturbHook(t *testing.T) {
	base := newEngine(t)
	plain, err := base.Run(50, FixedGovernor{AppCfg: 0, SysCfg: 20})
	if err != nil {
		t.Fatal(err)
	}
	dist := newEngine(t)
	dist.Disturb = func(iter int) (float64, float64) {
		return 0.5, 1.2 // half speed, 20% more power, every iteration
	}
	rec, err := dist.Run(50, FixedGovernor{AppCfg: 0, SysCfg: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Time <= plain.Time*1.8 {
		t.Fatalf("disturbed run not slower: %v vs %v", rec.Time, plain.Time)
	}
	if rec.TrueEnergy <= plain.TrueEnergy*2 {
		t.Fatalf("disturbed run energy %v vs plain %v", rec.TrueEnergy, plain.TrueEnergy)
	}
}

func TestHeartbeatStreamMatchesRun(t *testing.T) {
	e := newEngine(t)
	rec, err := e.Run(60, FixedGovernor{AppCfg: 0, SysCfg: 20})
	if err != nil {
		t.Fatal(err)
	}
	if e.HB.Count() != 60 {
		t.Fatalf("heartbeats: %d", e.HB.Count())
	}
	// The windowed heart rate must agree with the run's tail iteration
	// rate (fixed config -> near-constant intervals).
	var tail float64
	for _, d := range rec.Durations[40:] {
		tail += d
	}
	wantRate := 20 / tail
	if got := e.HB.WindowRate(); math.Abs(got-wantRate)/wantRate > 0.02 {
		t.Fatalf("window rate %v, run tail rate %v", got, wantRate)
	}
	min, mean, max := e.HB.LatencyStats()
	if !(min <= mean && mean <= max && min > 0) {
		t.Fatalf("latency stats: %v %v %v", min, mean, max)
	}
}

func TestNewValidatesAppProfile(t *testing.T) {
	if _, err := New(unknownApp{}, platform.Tablet(), 1); err == nil {
		t.Fatal("want error for app without a profile")
	}
}

type unknownApp struct{}

func (unknownApp) Name() string                     { return "mystery" }
func (unknownApp) NumConfigs() int                  { return 1 }
func (unknownApp) DefaultConfig() int               { return 0 }
func (unknownApp) Metric() string                   { return "" }
func (unknownApp) Step(c, i int) (float64, float64) { return 1, 1 }

func TestDisturbIgnoresDegenerateMultipliers(t *testing.T) {
	// Zero, negative and non-positive multipliers must be ignored rather
	// than zeroing rates (divide-by-zero durations) or negating power.
	base := newEngine(t)
	plain, err := base.Run(40, FixedGovernor{AppCfg: 0, SysCfg: 20})
	if err != nil {
		t.Fatal(err)
	}
	dist := newEngine(t)
	dist.Disturb = func(iter int) (float64, float64) {
		switch iter % 3 {
		case 0:
			return 0, 0
		case 1:
			return -2, -0.5
		}
		return 1, 1
	}
	rec, err := dist.Run(40, FixedGovernor{AppCfg: 0, SysCfg: 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rec.Time-plain.Time)/plain.Time > 1e-9 {
		t.Fatalf("degenerate multipliers changed timing: %v vs %v", rec.Time, plain.Time)
	}
	if math.Abs(rec.TrueEnergy-plain.TrueEnergy)/plain.TrueEnergy > 1e-9 {
		t.Fatalf("degenerate multipliers changed energy: %v vs %v", rec.TrueEnergy, plain.TrueEnergy)
	}
	for _, d := range rec.Durations {
		if d <= 0 || math.IsInf(d, 0) || math.IsNaN(d) {
			t.Fatalf("degenerate duration %v", d)
		}
	}
}

func TestDisturbNilIsNoDisturbance(t *testing.T) {
	a, b := newEngine(t), newEngine(t)
	b.Disturb = nil
	ra, err := a.Run(30, FixedGovernor{AppCfg: 0, SysCfg: 20})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run(30, FixedGovernor{AppCfg: 0, SysCfg: 20})
	if err != nil {
		t.Fatal(err)
	}
	if ra.TrueEnergy != rb.TrueEnergy || ra.Time != rb.Time {
		t.Fatal("nil Disturb must be identical to no hook")
	}
}
