package sim

import (
	"testing"

	"jouleguard/internal/apps"
	"jouleguard/internal/platform"
)

// BenchmarkEngineRun measures the per-iteration cost of the simulation
// loop under a fixed governor — the hot path every experiment driver
// amplifies by hundreds of iterations per run. ReportAllocs keeps the
// trace-slice preallocation honest: the loop body should not grow the
// Record by repeated append reallocation.
func BenchmarkEngineRun(b *testing.B) {
	app, err := apps.New("radar")
	if err != nil {
		b.Fatal(err)
	}
	plat, err := platform.ByName("Mobile")
	if err != nil {
		b.Fatal(err)
	}
	gov := FixedGovernor{AppCfg: app.DefaultConfig(), SysCfg: plat.DefaultConfig()}
	const iters = 200
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(app, plat, 7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(iters, gov); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStep measures one simulated iteration by running a
// single b.N-iteration trace, so per-op numbers are the marginal cost of
// the loop body (the Record preallocation is amortised away).
func BenchmarkEngineStep(b *testing.B) {
	app, err := apps.New("radar")
	if err != nil {
		b.Fatal(err)
	}
	plat, err := platform.ByName("Mobile")
	if err != nil {
		b.Fatal(err)
	}
	gov := FixedGovernor{AppCfg: app.DefaultConfig(), SysCfg: plat.DefaultConfig()}
	e, err := New(app, plat, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := e.Run(b.N, gov); err != nil {
		b.Fatal(err)
	}
}
