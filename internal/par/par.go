// Package par is the shared bounded-parallelism runner for the experiment
// drivers. Every table, figure, ablation and chaos driver fans its cells out
// through Map, which guarantees two properties the evaluation pipeline
// depends on:
//
//   - Deterministic results: jobs write into caller-owned slots indexed by
//     job number, and Map itself imposes no ordering on those writes beyond
//     the happens-before edge of its return — so a driver's output is a pure
//     function of its inputs and seeds, independent of the worker count.
//     Regenerated CSVs are byte-identical whether the pool runs with one
//     worker or sixteen.
//   - Deterministic errors: when several jobs fail, Map reports the failure
//     of the lowest job index, not whichever goroutine lost the race.
//
// The worker count defaults to the machine size and can be pinned (globally
// via SetWorkers, or per call via MapWorkers) — the golden-determinism test
// uses this to assert serial and parallel execution produce identical
// structured results.
package par

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"jouleguard/internal/telemetry"
)

// workers is the pool size Map uses; 0 or negative means the environment
// default (JOULEGUARD_WORKERS if set, else runtime.NumCPU()).
var workers atomic.Int64

// envWorkers is the JOULEGUARD_WORKERS override, read once. It exists so
// the serial-vs-parallel byte-identity of regenerated results can be
// demonstrated from the command line without recompiling:
//
//	JOULEGUARD_WORKERS=1 go run ./cmd/replicate
var envWorkers = func() int {
	if v, err := strconv.Atoi(os.Getenv("JOULEGUARD_WORKERS")); err == nil && v > 0 {
		return v
	}
	return 0
}()

// sinkBox wraps the process-wide telemetry sink so atomic.Value always
// stores one concrete type regardless of the Sink implementation.
type sinkBox struct{ s telemetry.Sink }

var sink atomic.Value // holds sinkBox

// SetSink installs a process-wide telemetry sink for the runner; every
// Map/MapWorkers job reports JobStart (with the queue depth behind it)
// and JobDone through it. Pass nil to restore the no-op sink.
func SetSink(s telemetry.Sink) { sink.Store(sinkBox{telemetry.OrNop(s)}) }

func currentSink() telemetry.Sink {
	if b, ok := sink.Load().(sinkBox); ok {
		return b.s
	}
	return telemetry.Nop{}
}

// Workers returns the effective worker count Map will use for n jobs.
func Workers() int {
	w := int(workers.Load())
	if w <= 0 {
		w = envWorkers
	}
	if w <= 0 {
		w = runtime.NumCPU()
	}
	return w
}

// SetWorkers pins the pool size (0 restores the machine default) and
// returns a function that restores the previous setting. Intended for tests
// that need to force serial or oversubscribed execution.
func SetWorkers(n int) (restore func()) {
	prev := workers.Swap(int64(n))
	return func() { workers.Store(prev) }
}

// Map runs n jobs over a worker pool sized to the machine (or the SetWorkers
// override) and waits for all of them. Any job error aborts the batch's
// remaining unstarted jobs; the error reported is the lowest-index failure.
func Map(n int, job func(i int) error) error {
	return MapWorkers(Workers(), n, job)
}

// MapWorkers is Map with an explicit pool size for this call only.
func MapWorkers(w, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstIdx < 0 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstIdx >= 0
	}
	tele := currentSink()
	var next atomic.Int64
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed() {
					return
				}
				queued := n - int(next.Load())
				if queued < 0 {
					queued = 0
				}
				tele.JobStart(queued)
				err := job(i)
				tele.JobDone(err != nil)
				if err != nil {
					fail(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstIdx >= 0 {
		return fmt.Errorf("par: job %d: %w", firstIdx, firstErr)
	}
	return nil
}
