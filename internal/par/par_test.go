package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapRunsAllJobs(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		got := make([]int32, 100)
		if err := MapWorkers(w, len(got), func(i int) error {
			atomic.AddInt32(&got[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range got {
			if v != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", w, i, v)
			}
		}
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	fail := map[int]bool{3: true, 40: true, 97: true}
	for _, w := range []int{1, 8} {
		err := MapWorkers(w, 100, func(i int) error {
			if fail[i] {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected an error", w)
		}
		if !strings.Contains(err.Error(), "job 3") {
			t.Fatalf("workers=%d: want lowest-index failure (job 3), got %v", w, err)
		}
	}
}

func TestMapErrorAbortsUnstartedJobs(t *testing.T) {
	var ran atomic.Int32
	err := MapWorkers(1, 1000, func(i int) error {
		ran.Add(1)
		if i == 5 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if n := ran.Load(); n > 10 {
		t.Fatalf("expected early abort, but %d jobs ran", n)
	}
}

func TestMapZeroAndNegativeJobs(t *testing.T) {
	if err := Map(0, func(int) error { t.Fatal("job ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Map(-3, func(int) error { t.Fatal("job ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSetWorkersRestores(t *testing.T) {
	orig := Workers()
	restore := SetWorkers(1)
	if got := Workers(); got != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(1)", got)
	}
	restore()
	if got := Workers(); got != orig {
		t.Fatalf("Workers() = %d after restore, want %d", got, orig)
	}
}
