package qos

import (
	"sort"
	"sync"
	"sync/atomic"

	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// Config tunes the ladder. The zero value selects the defaults with
// local observation disabled.
type Config struct {
	// Enabled turns on the local ladder: Observe ticks climb and shed.
	// Disabled (the default), the engine still enforces fleet-shipped
	// remote policy and still answers CheckNext/CheckRegister, but
	// never escalates on its own — graduated enforcement is an
	// operator decision, not a default behavior change.
	Enabled bool
	// OverrunRatio is the footprint-over-fair-share threshold above
	// which an observation counts as an overrun (default 1.25: a
	// tenant must hold >125% of its weighted fair share of the pool
	// before the ladder engages — honest bursts ride under it).
	OverrunRatio float64
	// EscalateAfter is the hysteresis on the way up: consecutive
	// overrun observations required to climb one rung (default 3).
	EscalateAfter int
	// DeescalateAfter is the sticky recovery: consecutive clean
	// observations required to descend one rung (default 6 — twice the
	// climb, like the watchdog's sticky degradation).
	DeescalateAfter int
	// DegradeFloorScale is the accuracy-floor multiplier applied at
	// the degraded rung and above (default 0.8).
	DegradeFloorScale float64
	// ShedPressure is the pool-pressure threshold — (committed +
	// consumed) / global — above which overload shedding engages
	// (default 0.97).
	ShedPressure float64
	// ThrottleBurst is how many Next decisions a throttled tenant may
	// take per SLO window before pacing rejects the excess (default 1:
	// exactly the SLO rate).
	ThrottleBurst int
}

func (c Config) withDefaults() Config {
	if c.OverrunRatio <= 0 {
		c.OverrunRatio = 1.25
	}
	if c.EscalateAfter <= 0 {
		c.EscalateAfter = 3
	}
	if c.DeescalateAfter <= 0 {
		c.DeescalateAfter = 2 * c.EscalateAfter
	}
	if c.DegradeFloorScale <= 0 || c.DegradeFloorScale > 1 {
		c.DegradeFloorScale = 0.8
	}
	if c.ShedPressure <= 0 {
		c.ShedPressure = 0.97
	}
	if c.ThrottleBurst <= 0 {
		c.ThrottleBurst = 1
	}
	return c
}

// Observation is one tenant's footprint at an observe tick, derived by
// the server from the broker's per-tenant ledger.
type Observation struct {
	Tenant string
	// Overrun is the tenant's pool footprint (committed + spent)
	// relative to its weighted fair share (1 = exactly fair). The
	// ladder climbs while Overrun stays above Config.OverrunRatio.
	Overrun float64
	// BurnW is the tenant's smoothed burn rate; shedding sacrifices
	// the hottest candidate first so one shed buys the most relief.
	BurnW float64
	// Sessions is the tenant's live session count on this node; only
	// tenants with sessions are shed candidates.
	Sessions int
}

// Verdict is what an observe tick asks the caller to actuate.
type Verdict struct {
	// Kill lists tenants whose live sessions must be torn down
	// (tenant_shed): tenants at the killed rung, whether the ladder or
	// overload shedding put them there.
	Kill []string
}

// Denial is a refused call: Code is the stable wire error code the
// caller maps onto its transport (HTTP status or v2 frame byte).
type Denial struct {
	Code string
	Msg  string
}

// tenantState is one tenant's ladder position.
type tenantState struct {
	tier   Tier
	local  State // this node's ladder verdict
	remote State // fleet-wide floor shipped by the coordinator
	hot    int   // consecutive overrun observations
	cool   int   // consecutive clean observations
	// nextOkNS paces throttled tenants: the earliest UnixNano at which
	// the next decision is allowed.
	nextOkNS int64

	gLadder *telemetry.Gauge
	gTier   *telemetry.Gauge
}

func (t *tenantState) effective() State { return maxState(t.local, t.remote) }

// Engine is the policy engine. One per server; all methods are safe
// for concurrent use. CheckNext is on the hot decision path and stays
// lock-free while no tenant is enforced.
type Engine struct {
	cfg Config

	// enforced counts tenants whose effective state is not OK; the hot
	// path consults only this before taking the lock.
	enforced atomic.Int64

	mu      sync.Mutex
	tenants map[string]*tenantState

	reg         *telemetry.Registry
	cEscalate   *telemetry.Counter
	cDeescalate *telemetry.Counter
	cThrottled  *telemetry.Counter
	cSuspended  *telemetry.Counter
	cShed       *telemetry.Counter
}

// New builds an engine (cfg zero value = defaults).
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), tenants: map[string]*tenantState{}}
}

// Instrument registers the engine's enforcement counters and arranges
// lazy per-tenant ladder/tier gauges on r.
func (e *Engine) Instrument(r *telemetry.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reg = r
	e.cEscalate = r.Counter("jouleguard_qos_escalations_total", "Ladder escalations (one rung up).")
	e.cDeescalate = r.Counter("jouleguard_qos_deescalations_total", "Ladder de-escalations (one rung down).")
	e.cThrottled = r.Counter("jouleguard_qos_throttled_total", "Next decisions rejected by throttle pacing (tenant_throttled).")
	e.cSuspended = r.Counter("jouleguard_qos_suspended_registrations_total", "Registrations refused while suspended (tenant_suspended).")
	e.cShed = r.Counter("jouleguard_qos_shed_total", "Tenants shed (sessions killed) by the ladder or overload shedding.")
	for name, t := range e.tenants {
		e.gaugeLocked(name, t)
	}
}

// gaugeLocked lazily creates and refreshes a tenant's gauges; callers
// hold e.mu.
func (e *Engine) gaugeLocked(name string, t *tenantState) {
	if e.reg == nil {
		return
	}
	if t.gLadder == nil {
		t.gLadder = e.reg.Gauge("jouleguard_qos_ladder_state",
			"Tenant ladder rung (0 ok, 1 throttled, 2 degraded, 3 suspended, 4 killed).",
			telemetry.Label{Name: "tenant", Value: name})
		t.gTier = e.reg.Gauge("jouleguard_qos_tier",
			"Tenant QoS tier (0 standard, 1 best-effort, 2 guaranteed).",
			telemetry.Label{Name: "tenant", Value: name})
	}
	t.gLadder.Set(float64(t.effective()))
	t.gTier.Set(float64(t.tier))
}

// get returns the tenant's state, creating it at Standard/OK; callers
// hold e.mu.
func (e *Engine) get(tenant string) *tenantState {
	t := e.tenants[tenant]
	if t == nil {
		t = &tenantState{tier: Standard}
		e.tenants[tenant] = t
		e.gaugeLocked(tenant, t)
	}
	return t
}

// recountLocked refreshes the enforced-tenant count; callers hold e.mu
// and must call it after any state mutation.
func (e *Engine) recountLocked() {
	n := int64(0)
	for _, t := range e.tenants {
		if t.effective() != StateOK {
			n++
		}
	}
	e.enforced.Store(n)
}

// SetTier records a tenant's QoS class (latest registration wins).
func (e *Engine) SetTier(tenant string, tier Tier) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.get(tenant)
	t.tier = tier
	e.gaugeLocked(tenant, t)
}

// TierOf returns the tenant's class (Standard if never registered).
func (e *Engine) TierOf(tenant string) Tier {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t := e.tenants[tenant]; t != nil {
		return t.tier
	}
	return Standard
}

// StateOf returns the tenant's effective rung (local vs fleet, higher
// wins).
func (e *Engine) StateOf(tenant string) State {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t := e.tenants[tenant]; t != nil {
		return t.effective()
	}
	return StateOK
}

// FloorScale returns the accuracy-floor multiplier the ladder applies
// to the tenant right now (1 while below the degraded rung).
func (e *Engine) FloorScale(tenant string) float64 {
	if e.enforced.Load() == 0 {
		return 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if t := e.tenants[tenant]; t != nil && t.effective() >= StateDegraded {
		return e.cfg.DegradeFloorScale
	}
	return 1
}

// EffectiveFloor composes the tenant's requested accuracy floor with
// its tier contract and the ladder's current degradation.
func (e *Engine) EffectiveFloor(tenant string, minAccuracy float64) float64 {
	return minAccuracy * e.TierOf(tenant).Spec().Floor * e.FloorScale(tenant)
}

// CheckRegister gates a new registration: nil admits, a Denial
// carries tenant_suspended while the tenant sits at the suspend rung
// or above. Existing sessions are unaffected (suspension is rung 3;
// killing them is rung 4's job, actuated via Observe verdicts).
func (e *Engine) CheckRegister(tenant string) *Denial {
	if e.enforced.Load() == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.tenants[tenant]
	if t == nil || t.effective() < StateSuspended {
		return nil
	}
	if e.cSuspended != nil {
		e.cSuspended.Inc()
	}
	return &Denial{Code: wire.CodeTenantSuspended,
		Msg: "tenant " + tenant + " is " + t.effective().String() + "; new registrations refused until it de-escalates"}
}

// CheckNext gates one decision on the hot path. nowNS is the caller's
// UnixNano. While no tenant is enforced this is a single atomic load;
// for a throttled tenant it paces decisions to the tier's SLO rate
// (excess gets tenant_throttled), and for a killed tenant it returns
// tenant_shed.
func (e *Engine) CheckNext(tenant string, nowNS int64) *Denial {
	if e.enforced.Load() == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.tenants[tenant]
	if t == nil {
		return nil
	}
	switch st := t.effective(); {
	case st >= StateKilled:
		return &Denial{Code: wire.CodeTenantShed,
			Msg: "tenant " + tenant + " was shed; its sessions are killed until it de-escalates"}
	case st >= StateThrottled:
		slo := t.tier.Spec().SLO.Nanoseconds()
		if nowNS < t.nextOkNS {
			if e.cThrottled != nil {
				e.cThrottled.Inc()
			}
			return &Denial{Code: wire.CodeTenantThrottled,
				Msg: "tenant " + tenant + " is " + st.String() + "; decisions paced to the " + t.tier.String() + " SLO"}
		}
		t.nextOkNS = nowNS + slo/int64(e.cfg.ThrottleBurst)
	}
	return nil
}

// Observe runs one ladder tick: obs is every tenant's current
// footprint (from the broker's ledger) and pressure is the pool's
// (committed + consumed) / global. It climbs and descends ladders
// with hysteresis, engages overload shedding above ShedPressure, and
// returns the kill list for the caller to actuate.
func (e *Engine) Observe(obs []Observation, pressure float64) Verdict {
	if !e.cfg.Enabled {
		return Verdict{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range obs {
		t := e.get(o.Tenant)
		if o.Overrun > e.cfg.OverrunRatio {
			t.hot++
			t.cool = 0
			if t.hot >= e.cfg.EscalateAfter && t.local < StateKilled {
				t.local++
				t.hot = 0
				if e.cEscalate != nil {
					e.cEscalate.Inc()
				}
			}
		} else {
			t.cool++
			t.hot = 0
			if t.cool >= e.cfg.DeescalateAfter && t.local > StateOK {
				t.local--
				t.cool = 0
				if e.cDeescalate != nil {
					e.cDeescalate.Inc()
				}
			}
		}
	}
	// Overload shedding: one tenant per tick, lowest tier first
	// (best-effort, then standard — never guaranteed), hottest burn
	// within the tier so each shed buys the most relief. One per tick
	// keeps shedding as graduated as the ladder itself.
	if pressure > e.cfg.ShedPressure {
		if victim := e.shedCandidateLocked(obs); victim != "" {
			t := e.get(victim)
			if t.local < StateKilled {
				t.local = StateKilled
				if e.cShed != nil {
					e.cShed.Inc()
				}
			}
		}
	}
	var v Verdict
	for _, o := range obs {
		t := e.tenants[o.Tenant]
		if t != nil && o.Sessions > 0 && t.effective() >= StateKilled {
			v.Kill = append(v.Kill, o.Tenant)
		}
	}
	sort.Strings(v.Kill)
	for name, t := range e.tenants {
		e.gaugeLocked(name, t)
	}
	e.recountLocked()
	return v
}

// shedCandidateLocked picks the next shed victim: among tenants with
// live sessions not already killed, the lowest ShedOrder tier present,
// hottest burn first. Guaranteed tenants (ShedOrder < 0) are never
// candidates. Callers hold e.mu.
func (e *Engine) shedCandidateLocked(obs []Observation) string {
	victim := ""
	vOrder, vBurn := int(^uint(0)>>1), -1.0
	for _, o := range obs {
		t := e.tenants[o.Tenant]
		if t == nil || o.Sessions == 0 || t.effective() >= StateKilled {
			continue
		}
		order := t.tier.Spec().ShedOrder
		if order < 0 {
			continue
		}
		if order < vOrder || (order == vOrder && o.BurnW > vBurn) {
			victim, vOrder, vBurn = o.Tenant, order, o.BurnW
		}
	}
	return victim
}

// Standing is one tenant's published QoS position.
type Standing struct {
	Tenant string
	Tier   Tier
	// State is the effective rung (max of local and fleet); Local is
	// this node's own ladder verdict — what heartbeats ship, so the
	// fleet merge never echoes itself into a ratchet.
	State      State
	Local      State
	FloorScale float64
}

// Standings snapshots every known tenant, sorted by name.
func (e *Engine) Standings() []Standing {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Standing, 0, len(e.tenants))
	for name, t := range e.tenants {
		fs := 1.0
		if t.effective() >= StateDegraded {
			fs = e.cfg.DegradeFloorScale
		}
		out = append(out, Standing{Tenant: name, Tier: t.tier, State: t.effective(), Local: t.local, FloorScale: fs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// LocalPolicies renders this node's own ladder verdicts as wire
// policies for the heartbeat (only escalated tenants ship; an empty
// report is the common case and costs nothing).
func (e *Engine) LocalPolicies() []wire.TenantPolicy {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []wire.TenantPolicy
	for name, t := range e.tenants {
		if t.local == StateOK {
			continue
		}
		fs := 1.0
		if t.local >= StateDegraded {
			fs = e.cfg.DegradeFloorScale
		}
		out = append(out, wire.TenantPolicy{Tenant: name, Tier: t.tier.String(), State: t.local.String(), FloorScale: fs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// ApplyRemote overlays the coordinator's fleet-wide policy merge: each
// listed tenant's remote rung is set, and every unlisted tenant's is
// cleared (the fleet no longer escalates it). Local ladders are
// untouched — the effective rung is the max of the two.
func (e *Engine) ApplyRemote(policies []wire.TenantPolicy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	listed := make(map[string]bool, len(policies))
	for _, p := range policies {
		listed[p.Tenant] = true
		t := e.get(p.Tenant)
		t.remote = ParseState(p.State)
	}
	for name, t := range e.tenants {
		if !listed[name] {
			t.remote = StateOK
		}
	}
	for name, t := range e.tenants {
		e.gaugeLocked(name, t)
	}
	e.recountLocked()
}
