package qos

import (
	"testing"
	"time"

	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// tick runs one observe with a single tenant at the given overrun.
func tick(e *Engine, tenant string, overrun, pressure float64) Verdict {
	return e.Observe([]Observation{{Tenant: tenant, Overrun: overrun, Sessions: 1, BurnW: 1}}, pressure)
}

func TestLadderClimbsWithHysteresis(t *testing.T) {
	e := New(Config{Enabled: true, EscalateAfter: 3, DeescalateAfter: 6})
	// Two overrun ticks are not enough to move off OK.
	tick(e, "a", 2, 0)
	tick(e, "a", 2, 0)
	if got := e.StateOf("a"); got != StateOK {
		t.Fatalf("state after 2 overruns = %v, want ok", got)
	}
	// The third climbs one rung; each further EscalateAfter climbs one
	// more, stopping at killed.
	want := []State{StateThrottled, StateDegraded, StateSuspended, StateKilled, StateKilled}
	for rung, w := range want {
		for i := 0; i < 3; i++ {
			tick(e, "a", 2, 0)
		}
		if got := e.StateOf("a"); got != w {
			t.Fatalf("rung %d: state = %v, want %v", rung, got, w)
		}
	}
}

func TestLadderStickyDeescalation(t *testing.T) {
	e := New(Config{Enabled: true, EscalateAfter: 1, DeescalateAfter: 4})
	tick(e, "a", 2, 0)
	tick(e, "a", 2, 0)
	if got := e.StateOf("a"); got != StateDegraded {
		t.Fatalf("state = %v, want degraded", got)
	}
	// Three clean ticks do not descend; a fourth descends exactly one
	// rung, and an overrun in between resets the cooldown.
	for i := 0; i < 3; i++ {
		tick(e, "a", 1, 0)
	}
	if got := e.StateOf("a"); got != StateDegraded {
		t.Fatalf("state after 3 clean = %v, want degraded (sticky)", got)
	}
	tick(e, "a", 2, 0) // resets cool, climbs back toward suspend
	for i := 0; i < 3; i++ {
		tick(e, "a", 1, 0)
	}
	if got := e.StateOf("a"); got < StateDegraded {
		t.Fatalf("cooldown not reset by overrun: state = %v", got)
	}
	for i := 0; i < 16; i++ {
		tick(e, "a", 1, 0)
	}
	if got := e.StateOf("a"); got != StateOK {
		t.Fatalf("state after long clean run = %v, want ok", got)
	}
}

func TestShedOrderBestEffortFirst(t *testing.T) {
	e := New(Config{Enabled: true, ShedPressure: 0.9})
	e.SetTier("gold", Guaranteed)
	e.SetTier("std", Standard)
	e.SetTier("be1", BestEffort)
	e.SetTier("be2", BestEffort)
	obs := []Observation{
		{Tenant: "gold", Overrun: 1, Sessions: 1, BurnW: 100},
		{Tenant: "std", Overrun: 1, Sessions: 1, BurnW: 50},
		{Tenant: "be1", Overrun: 1, Sessions: 1, BurnW: 5},
		{Tenant: "be2", Overrun: 1, Sessions: 1, BurnW: 9},
	}
	// First shed tick: hottest best-effort tenant goes first.
	v := e.Observe(obs, 0.99)
	if len(v.Kill) != 1 || v.Kill[0] != "be2" {
		t.Fatalf("first shed = %v, want [be2]", v.Kill)
	}
	// Second: the remaining best-effort tenant.
	v = e.Observe(obs, 0.99)
	if len(v.Kill) != 2 || v.Kill[0] != "be1" || v.Kill[1] != "be2" {
		t.Fatalf("second shed = %v, want [be1 be2]", v.Kill)
	}
	// Third: standard. Guaranteed is never shed, however long the
	// pressure lasts.
	v = e.Observe(obs, 0.99)
	if len(v.Kill) != 3 || v.Kill[2] != "std" {
		t.Fatalf("third shed = %v, want [be1 be2 std]", v.Kill)
	}
	for i := 0; i < 3; i++ {
		v = e.Observe(obs, 0.99)
	}
	for _, killed := range v.Kill {
		if killed == "gold" {
			t.Fatalf("guaranteed tenant shed: %v", v.Kill)
		}
	}
	if got := e.StateOf("gold"); got != StateOK {
		t.Fatalf("guaranteed tenant escalated by shedding: %v", got)
	}
}

func TestCheckNextPacesThrottledTenant(t *testing.T) {
	e := New(Config{Enabled: true, EscalateAfter: 1})
	now := time.Now().UnixNano()
	if d := e.CheckNext("a", now); d != nil {
		t.Fatalf("unenforced tenant denied: %+v", d)
	}
	tick(e, "a", 2, 0) // -> throttled
	slo := Standard.Spec().SLO.Nanoseconds()
	if d := e.CheckNext("a", now); d != nil {
		t.Fatalf("first decision after throttle denied: %+v", d)
	}
	if d := e.CheckNext("a", now+slo/2); d == nil || d.Code != wire.CodeTenantThrottled {
		t.Fatalf("within-SLO decision = %+v, want tenant_throttled", d)
	}
	if d := e.CheckNext("a", now+slo+1); d != nil {
		t.Fatalf("post-SLO decision denied: %+v", d)
	}
	// Other tenants are untouched.
	if d := e.CheckNext("b", now); d != nil {
		t.Fatalf("innocent tenant denied: %+v", d)
	}
}

func TestCheckRegisterSuspends(t *testing.T) {
	e := New(Config{Enabled: true, EscalateAfter: 1})
	for i := 0; i < 3; i++ {
		tick(e, "a", 2, 0)
	}
	if got := e.StateOf("a"); got != StateSuspended {
		t.Fatalf("state = %v, want suspended", got)
	}
	if d := e.CheckRegister("a"); d == nil || d.Code != wire.CodeTenantSuspended {
		t.Fatalf("suspended register = %+v, want tenant_suspended", d)
	}
	if d := e.CheckRegister("b"); d != nil {
		t.Fatalf("innocent register denied: %+v", d)
	}
	tick(e, "a", 2, 0) // -> killed
	if d := e.CheckNext("a", time.Now().UnixNano()); d == nil || d.Code != wire.CodeTenantShed {
		t.Fatalf("killed Next = %+v, want tenant_shed", d)
	}
}

func TestRemotePolicyOverlay(t *testing.T) {
	e := New(Config{})
	e.SetTier("a", BestEffort)
	e.ApplyRemote([]wire.TenantPolicy{{Tenant: "a", Tier: "best-effort", State: "suspended"}})
	if got := e.StateOf("a"); got != StateSuspended {
		t.Fatalf("remote state = %v, want suspended", got)
	}
	if d := e.CheckRegister("a"); d == nil {
		t.Fatal("remote suspension did not gate registration")
	}
	// Local ladder still reports OK on heartbeats — the merge must not
	// echo itself into a ratchet.
	if ps := e.LocalPolicies(); len(ps) != 0 {
		t.Fatalf("local policies = %v, want none (remote-only escalation)", ps)
	}
	// An empty merge clears the overlay.
	e.ApplyRemote(nil)
	if got := e.StateOf("a"); got != StateOK {
		t.Fatalf("state after clear = %v, want ok", got)
	}
	if d := e.CheckRegister("a"); d != nil {
		t.Fatalf("cleared tenant still gated: %+v", d)
	}
}

func TestEffectiveFloorComposesTierAndLadder(t *testing.T) {
	e := New(Config{Enabled: true, EscalateAfter: 1, DegradeFloorScale: 0.8})
	e.SetTier("g", Guaranteed)
	e.SetTier("be", BestEffort)
	if got, want := e.EffectiveFloor("g", 0.9), 0.9; got != want {
		t.Fatalf("guaranteed floor = %v, want %v", got, want)
	}
	if got, want := e.EffectiveFloor("be", 0.9), 0.9*0.7; got != want {
		t.Fatalf("best-effort floor = %v, want %v", got, want)
	}
	tick(e, "be", 2, 0)
	tick(e, "be", 2, 0) // -> degraded
	if got, want := e.EffectiveFloor("be", 0.9), 0.9*0.7*0.8; got != want {
		t.Fatalf("degraded best-effort floor = %v, want %v", got, want)
	}
}

func TestTierAndStateParsing(t *testing.T) {
	for _, tier := range []Tier{Guaranteed, Standard, BestEffort} {
		if got := ParseTier(tier.String()); got != tier {
			t.Fatalf("ParseTier(%q) = %v, want %v", tier.String(), got, tier)
		}
	}
	if got := ParseTier(""); got != Standard {
		t.Fatalf("ParseTier(\"\") = %v, want standard", got)
	}
	for s := StateOK; s <= StateKilled; s++ {
		if got := ParseState(s.String()); got != s {
			t.Fatalf("ParseState(%q) = %v, want %v", s.String(), got, s)
		}
	}
}

func TestPriceFloorMonotone(t *testing.T) {
	ests := []wire.ArmEstimate{
		{Arm: 0, Rate: 10, Power: 50, Pulls: 3}, // 5 J/iter
		{Arm: 1, Rate: 20, Power: 60, Pulls: 2}, // 3 J/iter (cheapest)
		{Arm: 2, Rate: 1, Power: 100, Pulls: 0}, // unpulled: no evidence
	}
	jpi := MinJoulesPerIter(ests)
	if jpi != 3 {
		t.Fatalf("MinJoulesPerIter = %v, want 3", jpi)
	}
	if MinJoulesPerIter(nil) != 0 {
		t.Fatal("no-evidence price must be 0")
	}
	p1 := PriceFloorJ(jpi, 100, 0.5)
	p2 := PriceFloorJ(jpi, 100, 0.9)
	p3 := PriceFloorJ(jpi, 200, 0.9)
	if !(p1 < p2 && p2 < p3) {
		t.Fatalf("price not monotone: %v %v %v", p1, p2, p3)
	}
	if PriceFloorJ(jpi, 100, 2) != PriceFloorJ(jpi, 100, 1) {
		t.Fatal("floor must clamp at 1")
	}
}

func TestInstrumentCountsEnforcement(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(Config{Enabled: true, EscalateAfter: 1})
	e.Instrument(reg)
	tick(e, "a", 2, 0)
	now := time.Now().UnixNano()
	e.CheckNext("a", now)
	if d := e.CheckNext("a", now); d == nil {
		t.Fatal("expected throttle denial")
	}
	standings := e.Standings()
	if len(standings) != 1 || standings[0].State != StateThrottled {
		t.Fatalf("standings = %+v", standings)
	}
}
