package qos

import "jouleguard/internal/wire"

// Joule pricing of accuracy floors. A tier's floor is a promise about
// delivered accuracy; what it costs is joules, and the bandit's
// learned per-arm (rate, power) estimates are the exchange rate: the
// most efficient pulled arm bounds the cheapest joules-per-iteration
// the platform has demonstrated, and a floor that must be delivered
// over W iterations costs at least that rate times the work — scaled
// by the floor itself, since delivering higher accuracy forecloses the
// cheap low-accuracy configurations. This is a first-order price (it
// ignores the app-level accuracy/config curve), but it is monotone in
// the floor and in the workload, which is all admission and shedding
// decisions need: a comparable number, not a forecast.

// MinJoulesPerIter returns the cheapest demonstrated cost of one
// iteration — min over pulled arms of power/rate — or 0 if no arm has
// been pulled yet (no evidence, no price).
func MinJoulesPerIter(ests []wire.ArmEstimate) float64 {
	min := 0.0
	for _, a := range ests {
		if a.Pulls <= 0 || a.Rate <= 0 || a.Power <= 0 {
			continue
		}
		jpi := a.Power / a.Rate
		if min == 0 || jpi < min {
			min = jpi
		}
	}
	return min
}

// PriceFloorJ prices an accuracy floor in joules: the first-order cost
// of delivering floor over iterations of work at the platform's
// cheapest demonstrated joules-per-iteration. Monotone in every
// argument; 0 when there is no evidence yet.
func PriceFloorJ(minJPI float64, iterations int, floor float64) float64 {
	if minJPI <= 0 || iterations <= 0 || floor <= 0 {
		return 0
	}
	if floor > 1 {
		floor = 1
	}
	return minJPI * float64(iterations) * floor
}
