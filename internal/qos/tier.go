// Package qos is the tenant-protection policy engine: it sits between
// the budget broker (which only admits or rejects) and the session
// layer, and turns sustained over-budget behavior into *graduated*
// enforcement. Three mechanisms compose:
//
//   - A per-tenant escalation ladder — throttle decision rate, then
//     degrade the accuracy floor, then suspend new registrations, then
//     kill sessions — with hysteresis on the way up (several
//     consecutive overrun observations per rung) and sticky
//     de-escalation on the way down (several consecutive clean
//     observations per rung), mirroring the runtime watchdog.
//   - QoS tiers (guaranteed / standard / best-effort), each carrying a
//     latency SLO and an accuracy-floor fraction, priced in joules via
//     the bandit's learned efficiency estimates (see PriceFloorJ).
//   - Overload shedding: when pool pressure exceeds the shed threshold
//     the engine sacrifices best-effort tenants first (then standard,
//     never guaranteed) to keep guaranteed tenants within budget.
//
// The engine is pure policy: the server feeds it observations derived
// from the broker's per-tenant ledger and actuates its verdicts on the
// v1 and v2 decision paths; the coordinator merges per-node verdicts
// into fleet-wide policy so a tenant throttled on one node cannot
// escape by re-placing on another.
package qos

import (
	"time"
)

// Tier is a tenant's QoS class. The zero value is Standard so an
// unspecified tier never lands a tenant in the shed-first class by
// accident; shedding order is BestEffort first, Guaranteed never.
type Tier int

const (
	// Standard is the default class: moderate SLO, shed only after
	// every best-effort tenant already was.
	Standard Tier = iota
	// BestEffort runs on leftover capacity: loosest SLO, reduced floor,
	// first against the wall under overload.
	BestEffort
	// Guaranteed is the premium class: tightest SLO, full accuracy
	// floor, never shed.
	Guaranteed
)

// TierSpec is the contract a tier defends: the decision-latency SLO
// and the fraction of the tenant's requested accuracy floor the
// engine protects (degradation scales down from there).
type TierSpec struct {
	Name string
	// SLO is the per-decision latency objective. The ladder's throttle
	// interval never paces a tenant below its SLO rate — throttling
	// slows a tenant toward its contract, not below it.
	SLO time.Duration
	// Floor is the fraction of the tenant's requested MinAccuracy this
	// tier defends (1 = the full request).
	Floor float64
	// ShedOrder sorts tenants for overload shedding: lower sheds
	// first; negative means never shed.
	ShedOrder int
	// FairWeight is the tier's weight in the enforcement-fairness
	// split: a tenant's fair footprint is the pool scaled by its
	// tier's FairWeight over the sum of present tenants'. Session
	// weights are client-claimed and so never enter this split — the
	// tier is the contract enforcement trusts.
	FairWeight float64
}

// specs indexes the tier table. Order here is documentation; shedding
// uses ShedOrder.
var specs = map[Tier]TierSpec{
	Guaranteed: {Name: "guaranteed", SLO: 10 * time.Millisecond, Floor: 1.0, ShedOrder: -1, FairWeight: 2},
	Standard:   {Name: "standard", SLO: 50 * time.Millisecond, Floor: 0.9, ShedOrder: 1, FairWeight: 1},
	BestEffort: {Name: "best-effort", SLO: 250 * time.Millisecond, Floor: 0.7, ShedOrder: 0, FairWeight: 0.5},
}

// Spec returns the tier's contract.
func (t Tier) Spec() TierSpec {
	if s, ok := specs[t]; ok {
		return s
	}
	return specs[Standard]
}

// String renders the tier's wire name ("guaranteed" | "standard" |
// "best-effort").
func (t Tier) String() string { return t.Spec().Name }

// ParseTier maps a wire tier name onto its Tier; empty or unknown
// names default to Standard, so older clients that never send a tier
// keep exactly their old contract.
func ParseTier(s string) Tier {
	switch s {
	case "guaranteed":
		return Guaranteed
	case "best-effort":
		return BestEffort
	default:
		return Standard
	}
}

// State is a tenant's ladder rung. Rungs are ordered: every
// enforcement at rung n also applies at rungs above it (a degraded
// tenant is still throttled; a suspended tenant is still degraded).
type State int

const (
	// StateOK: no enforcement.
	StateOK State = iota
	// StateThrottled: Next decisions are paced to the tenant's SLO
	// rate; excess calls get 429 tenant_throttled.
	StateThrottled
	// StateDegraded: additionally, the tenant's accuracy floor is
	// scaled down by the engine's DegradeFloorScale.
	StateDegraded
	// StateSuspended: additionally, new registrations are refused with
	// 503 tenant_suspended; existing sessions keep running (paced,
	// degraded).
	StateSuspended
	// StateKilled: the tenant's sessions are torn down (503
	// tenant_shed) and their grants reclaimed for the pool.
	StateKilled
)

var stateNames = [...]string{"ok", "throttled", "degraded", "suspended", "killed"}

// String renders the rung's wire name.
func (s State) String() string {
	if s >= 0 && int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "ok"
}

// ParseState maps a wire rung name back onto its State (unknown = ok).
func ParseState(name string) State {
	for i, n := range stateNames {
		if n == name {
			return State(i)
		}
	}
	return StateOK
}

// maxState returns the higher (more escalated) of two rungs.
func maxState(a, b State) State {
	if a > b {
		return a
	}
	return b
}
