// Package workload provides the synthetic input generators the evaluation
// uses in place of the paper's proprietary inputs: Zipf-distributed text
// corpora and power-law query streams (the paper's own swish++ methodology,
// Sec. 2 footnote 1), multi-phase scene traces for the video encoder
// (Sec. 5.6), and generic noise helpers shared by the application kernels.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Phase describes a contiguous stretch of a workload with a constant
// difficulty multiplier: an iteration in this phase costs Cost times the
// app's base work.
type Phase struct {
	Name       string
	Iterations int
	Cost       float64 // relative work per iteration (1 = nominal)
}

// Trace is a sequence of phases; it maps an iteration index to its cost.
type Trace struct {
	phases []Phase
	total  int
}

// NewTrace builds a trace from phases. Every phase must have positive
// length and cost.
func NewTrace(phases ...Phase) (*Trace, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: trace needs at least one phase")
	}
	t := &Trace{phases: append([]Phase(nil), phases...)}
	for _, p := range phases {
		if p.Iterations <= 0 {
			return nil, fmt.Errorf("workload: phase %q has %d iterations", p.Name, p.Iterations)
		}
		if p.Cost <= 0 || math.IsNaN(p.Cost) {
			return nil, fmt.Errorf("workload: phase %q has cost %v", p.Name, p.Cost)
		}
		t.total += p.Iterations
	}
	return t, nil
}

// ConstantTrace is a single-phase trace of n nominal-cost iterations.
func ConstantTrace(n int) *Trace {
	t, err := NewTrace(Phase{Name: "steady", Iterations: n, Cost: 1})
	if err != nil {
		panic(err) // n <= 0 is a programmer error
	}
	return t
}

// ThreePhaseVideo reproduces the Fig. 8 input: three scenes of framesPer
// frames each, where the middle scene "naturally (without any control)
// encodes about 40% faster" — i.e. costs 1/1.4 of the others.
func ThreePhaseVideo(framesPer int) *Trace {
	t, err := NewTrace(
		Phase{Name: "scene-a", Iterations: framesPer, Cost: 1},
		Phase{Name: "scene-b", Iterations: framesPer, Cost: 1 / 1.4},
		Phase{Name: "scene-a2", Iterations: framesPer, Cost: 1},
	)
	if err != nil {
		panic(err)
	}
	return t
}

// DiurnalTrace models a server's day/night load variation: iteration cost
// follows a sinusoid between lo and hi over `period` iterations, quantised
// into `steps` plateaus per period (real load curves are staircase-like at
// control timescales). n is the total length.
func DiurnalTrace(n, period, steps int, lo, hi float64) (*Trace, error) {
	if n <= 0 || period <= 1 || steps < 2 {
		return nil, fmt.Errorf("workload: invalid diurnal shape (n=%d period=%d steps=%d)", n, period, steps)
	}
	if lo <= 0 || hi < lo {
		return nil, fmt.Errorf("workload: invalid diurnal range [%v, %v]", lo, hi)
	}
	plateau := period / steps
	if plateau < 1 {
		plateau = 1
	}
	var phases []Phase
	for start := 0; start < n; start += plateau {
		length := plateau
		if start+length > n {
			length = n - start
		}
		mid := float64(start) + float64(length)/2
		cost := lo + (hi-lo)*(0.5+0.5*math.Sin(2*math.Pi*mid/float64(period)))
		phases = append(phases, Phase{
			Name:       fmt.Sprintf("diurnal-%d", start/plateau),
			Iterations: length,
			Cost:       cost,
		})
	}
	return NewTrace(phases...)
}

// BurstyTrace alternates calm stretches of nominal cost with short bursts
// of `burstCost`, a stress input for control loops: the budget must survive
// load spikes the model never saw. Deterministic given the rng seed.
func BurstyTrace(rng *rand.Rand, n, meanCalm, meanBurst int, burstCost float64) (*Trace, error) {
	if n <= 0 || meanCalm < 1 || meanBurst < 1 {
		return nil, fmt.Errorf("workload: invalid bursty shape (n=%d calm=%d burst=%d)", n, meanCalm, meanBurst)
	}
	if burstCost <= 0 {
		return nil, fmt.Errorf("workload: burst cost %v must be positive", burstCost)
	}
	var phases []Phase
	remaining := n
	burst := false
	for remaining > 0 {
		mean := meanCalm
		cost := 1.0
		if burst {
			mean = meanBurst
			cost = burstCost
		}
		length := 1 + rng.Intn(2*mean)
		if length > remaining {
			length = remaining
		}
		phases = append(phases, Phase{
			Name:       fmt.Sprintf("seg-%d", len(phases)),
			Iterations: length,
			Cost:       cost,
		})
		remaining -= length
		burst = !burst
	}
	return NewTrace(phases...)
}

// Len returns the total number of iterations in the trace.
func (t *Trace) Len() int { return t.total }

// Phases returns a copy of the phase list.
func (t *Trace) Phases() []Phase { return append([]Phase(nil), t.phases...) }

// Cost returns the difficulty multiplier for iteration i. Iterations past
// the end repeat the final phase's cost, so a trace can pace an open-ended
// run.
func (t *Trace) Cost(i int) float64 {
	if i < 0 {
		i = 0
	}
	for _, p := range t.phases {
		if i < p.Iterations {
			return p.Cost
		}
		i -= p.Iterations
	}
	return t.phases[len(t.phases)-1].Cost
}

// PhaseAt returns the phase containing iteration i (the last phase for
// out-of-range indices).
func (t *Trace) PhaseAt(i int) Phase {
	if i < 0 {
		i = 0
	}
	for _, p := range t.phases {
		if i < p.Iterations {
			return p
		}
		i -= p.Iterations
	}
	return t.phases[len(t.phases)-1]
}

// TotalCost returns the sum of costs over the whole trace — the total work
// in units of nominal iterations. The runtime uses it as the workload W the
// user supplies to Algorithm 1.
func (t *Trace) TotalCost() float64 {
	var sum float64
	for _, p := range t.phases {
		sum += float64(p.Iterations) * p.Cost
	}
	return sum
}

// LogNormal returns a multiplicative noise sample with median 1 and the
// given sigma (sigma = 0 returns exactly 1). Used to jitter per-iteration
// work the way real inputs do.
func LogNormal(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(rng.NormFloat64() * sigma)
}

// Corpus is a synthetic document collection with Zipf-distributed word
// frequencies, standing in for the Project Gutenberg books the paper
// indexes with swish++.
type Corpus struct {
	Docs  [][]int // Docs[d] = word ids in document d
	Vocab int     // vocabulary size; word ids are [0, Vocab)
}

// NewCorpus generates numDocs documents of wordsPerDoc words drawn from a
// vocabulary of vocab words with Zipf exponent s (s ~ 1 matches natural
// text). Deterministic given the rng seed.
func NewCorpus(rng *rand.Rand, numDocs, wordsPerDoc, vocab int, s float64) (*Corpus, error) {
	if numDocs <= 0 || wordsPerDoc <= 0 || vocab <= 1 {
		return nil, fmt.Errorf("workload: invalid corpus shape (%d docs, %d words, %d vocab)",
			numDocs, wordsPerDoc, vocab)
	}
	if s <= 1 {
		// rand.Zipf requires s > 1; natural-language fits hover just above.
		s = 1.0001
	}
	z := rand.NewZipf(rng, s, 1, uint64(vocab-1))
	c := &Corpus{Docs: make([][]int, numDocs), Vocab: vocab}
	for d := range c.Docs {
		words := make([]int, wordsPerDoc)
		for w := range words {
			words[w] = int(z.Uint64())
		}
		c.Docs[d] = words
	}
	return c, nil
}

// QueryStream draws search queries the way the paper does: "we construct a
// dictionary of all words present in the documents ... and select words at
// random following a power law distribution".
type QueryStream struct {
	words []int // dictionary sorted by descending corpus frequency
	z     *rand.Zipf
	rng   *rand.Rand
	terms int
}

// NewQueryStream builds a query generator over the corpus dictionary. Each
// query has terms words, selected power-law by corpus rank.
func NewQueryStream(rng *rand.Rand, c *Corpus, terms int, s float64) (*QueryStream, error) {
	if terms <= 0 {
		return nil, fmt.Errorf("workload: query needs at least one term")
	}
	freq := make([]int, c.Vocab)
	for _, doc := range c.Docs {
		for _, w := range doc {
			freq[w]++
		}
	}
	// Dictionary = words that actually occur, ranked by frequency. The top
	// ranks play the role of stop words and are excluded, as in the paper.
	type wf struct{ w, f int }
	var present []wf
	for w, f := range freq {
		if f > 0 {
			present = append(present, wf{w, f})
		}
	}
	if len(present) < 2 {
		return nil, fmt.Errorf("workload: corpus too small for queries")
	}
	for i := 1; i < len(present); i++ { // insertion sort by descending f (stable, no deps)
		for j := i; j > 0 && present[j].f > present[j-1].f; j-- {
			present[j], present[j-1] = present[j-1], present[j]
		}
	}
	stop := len(present) / 50 // drop the top 2% as stop words
	present = present[stop:]
	words := make([]int, len(present))
	for i, p := range present {
		words[i] = p.w
	}
	if s <= 1 {
		s = 1.0001
	}
	return &QueryStream{
		words: words,
		z:     rand.NewZipf(rng, s, 1, uint64(len(words)-1)),
		rng:   rng,
		terms: terms,
	}, nil
}

// Next returns the next query's word ids.
func (q *QueryStream) Next() []int {
	out := make([]int, q.terms)
	for i := range out {
		out[i] = q.words[q.z.Uint64()]
	}
	return out
}

// DictionarySize returns the number of candidate query words.
func (q *QueryStream) DictionarySize() int { return len(q.words) }

// WordString renders a word id as a fake token, for debugging output.
func WordString(id int) string {
	var b strings.Builder
	b.WriteByte('w')
	fmt.Fprintf(&b, "%d", id)
	return b.String()
}
