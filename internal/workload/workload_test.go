package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTraceValidates(t *testing.T) {
	if _, err := NewTrace(); err == nil {
		t.Error("want error for empty trace")
	}
	if _, err := NewTrace(Phase{Iterations: 0, Cost: 1}); err == nil {
		t.Error("want error for zero-length phase")
	}
	if _, err := NewTrace(Phase{Iterations: 5, Cost: 0}); err == nil {
		t.Error("want error for zero cost")
	}
	if _, err := NewTrace(Phase{Iterations: 5, Cost: math.NaN()}); err == nil {
		t.Error("want error for NaN cost")
	}
}

func TestTraceCostLookup(t *testing.T) {
	tr, err := NewTrace(
		Phase{Name: "a", Iterations: 3, Cost: 1},
		Phase{Name: "b", Iterations: 2, Cost: 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	wants := []float64{1, 1, 1, 0.5, 0.5}
	for i, w := range wants {
		if got := tr.Cost(i); got != w {
			t.Errorf("Cost(%d) = %v, want %v", i, got, w)
		}
	}
	if tr.Cost(-1) != 1 {
		t.Error("negative index should clamp to first phase")
	}
	if tr.Cost(99) != 0.5 {
		t.Error("past-the-end should repeat final phase")
	}
	if tr.Len() != 5 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.TotalCost(); math.Abs(got-4) > 1e-12 {
		t.Errorf("TotalCost = %v, want 4", got)
	}
	if tr.PhaseAt(3).Name != "b" || tr.PhaseAt(0).Name != "a" || tr.PhaseAt(99).Name != "b" {
		t.Error("PhaseAt mapping wrong")
	}
}

func TestConstantTrace(t *testing.T) {
	tr := ConstantTrace(10)
	if tr.Len() != 10 || tr.Cost(5) != 1 || tr.TotalCost() != 10 {
		t.Fatalf("ConstantTrace: len=%d cost=%v total=%v", tr.Len(), tr.Cost(5), tr.TotalCost())
	}
}

func TestThreePhaseVideoMatchesPaper(t *testing.T) {
	tr := ThreePhaseVideo(200)
	if tr.Len() != 600 {
		t.Fatalf("Len = %d, want 600", tr.Len())
	}
	// Middle scene encodes ~40% faster: cost ratio 1/1.4.
	if got := tr.Cost(0) / tr.Cost(300); math.Abs(got-1.4) > 1e-12 {
		t.Fatalf("phase cost ratio: %v, want 1.4", got)
	}
	if tr.Cost(0) != tr.Cost(599) {
		t.Fatal("first and third scenes should match")
	}
}

// Property: TotalCost equals the sum of Cost(i) over the trace.
func TestTraceTotalCostConsistencyProperty(t *testing.T) {
	f := func(lens []uint8, costs []uint8) bool {
		n := len(lens)
		if len(costs) < n {
			n = len(costs)
		}
		if n == 0 {
			return true
		}
		phases := make([]Phase, 0, n)
		for i := 0; i < n; i++ {
			phases = append(phases, Phase{
				Iterations: int(lens[i]%20) + 1,
				Cost:       float64(costs[i]%50)/10 + 0.1,
			})
		}
		tr, err := NewTrace(phases...)
		if err != nil {
			return false
		}
		var sum float64
		for i := 0; i < tr.Len(); i++ {
			sum += tr.Cost(i)
		}
		return math.Abs(sum-tr.TotalCost()) < 1e-9*(1+sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiurnalTrace(t *testing.T) {
	tr, err := DiurnalTrace(400, 200, 8, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 400 {
		t.Fatalf("len: %d", tr.Len())
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < tr.Len(); i++ {
		c := tr.Cost(i)
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	if lo < 0.5-1e-9 || hi > 2+1e-9 {
		t.Fatalf("cost range [%v, %v] outside [0.5, 2]", lo, hi)
	}
	if hi-lo < 1.0 {
		t.Fatalf("diurnal swing too small: [%v, %v]", lo, hi)
	}
	// One full period: early costs should differ from quarter-period costs.
	if math.Abs(tr.Cost(10)-tr.Cost(110)) < 0.2 {
		t.Fatal("no diurnal variation across a half period")
	}
}

func TestDiurnalTraceValidates(t *testing.T) {
	if _, err := DiurnalTrace(0, 10, 4, 1, 2); err == nil {
		t.Error("want error for zero length")
	}
	if _, err := DiurnalTrace(10, 1, 4, 1, 2); err == nil {
		t.Error("want error for degenerate period")
	}
	if _, err := DiurnalTrace(10, 10, 4, 2, 1); err == nil {
		t.Error("want error for inverted range")
	}
}

func TestBurstyTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr, err := BurstyTrace(rng, 500, 40, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Fatalf("len: %d", tr.Len())
	}
	// Both calm and burst costs must occur.
	var calm, burst int
	for i := 0; i < tr.Len(); i++ {
		switch tr.Cost(i) {
		case 1:
			calm++
		case 3:
			burst++
		default:
			t.Fatalf("unexpected cost %v", tr.Cost(i))
		}
	}
	if calm == 0 || burst == 0 {
		t.Fatalf("calm=%d burst=%d", calm, burst)
	}
	if burst > calm {
		t.Fatalf("bursts dominate: calm=%d burst=%d", calm, burst)
	}
}

func TestBurstyTraceValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	if _, err := BurstyTrace(rng, 0, 10, 5, 2); err == nil {
		t.Error("want error for zero length")
	}
	if _, err := BurstyTrace(rng, 10, 0, 5, 2); err == nil {
		t.Error("want error for zero calm length")
	}
	if _, err := BurstyTrace(rng, 10, 5, 5, 0); err == nil {
		t.Error("want error for zero burst cost")
	}
}

func TestLogNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if LogNormal(rng, 0) != 1 {
		t.Fatal("sigma=0 must return 1")
	}
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		v := LogNormal(rng, 0.1)
		if v <= 0 {
			t.Fatal("non-positive noise sample")
		}
		sum += math.Log(v)
	}
	if mean := sum / float64(n); math.Abs(mean) > 0.01 {
		t.Fatalf("log-mean = %v, want ~0", mean)
	}
}

func TestNewCorpusValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := NewCorpus(rng, 0, 10, 10, 1.1); err == nil {
		t.Error("want error for zero docs")
	}
	if _, err := NewCorpus(rng, 10, 0, 10, 1.1); err == nil {
		t.Error("want error for zero words")
	}
	if _, err := NewCorpus(rng, 10, 10, 1, 1.1); err == nil {
		t.Error("want error for unit vocab")
	}
}

func TestCorpusShapeAndZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, err := NewCorpus(rng, 50, 500, 1000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Docs) != 50 {
		t.Fatalf("doc count: %d", len(c.Docs))
	}
	freq := make([]int, c.Vocab)
	for _, d := range c.Docs {
		if len(d) != 500 {
			t.Fatalf("doc length: %d", len(d))
		}
		for _, w := range d {
			if w < 0 || w >= c.Vocab {
				t.Fatalf("word id out of range: %d", w)
			}
			freq[w]++
		}
	}
	// Zipf: word 0 must dominate the tail.
	var tail int
	for _, f := range freq[100:] {
		tail += f
	}
	if freq[0] < tail/100 {
		t.Fatalf("frequency distribution not heavy-headed: head=%d tail=%d", freq[0], tail)
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, _ := NewCorpus(rand.New(rand.NewSource(4)), 5, 50, 100, 1.1)
	b, _ := NewCorpus(rand.New(rand.NewSource(4)), 5, 50, 100, 1.1)
	for d := range a.Docs {
		for w := range a.Docs[d] {
			if a.Docs[d][w] != b.Docs[d][w] {
				t.Fatal("corpus generation not deterministic")
			}
		}
	}
}

func TestQueryStream(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, err := NewCorpus(rng, 40, 400, 500, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueryStream(rng, c, 3, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if q.DictionarySize() <= 0 {
		t.Fatal("empty dictionary")
	}
	present := map[int]bool{}
	for _, d := range c.Docs {
		for _, w := range d {
			present[w] = true
		}
	}
	for i := 0; i < 500; i++ {
		terms := q.Next()
		if len(terms) != 3 {
			t.Fatalf("query size: %d", len(terms))
		}
		for _, w := range terms {
			if !present[w] {
				t.Fatalf("query term %d not in corpus", w)
			}
		}
	}
}

func TestNewQueryStreamValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, _ := NewCorpus(rng, 10, 100, 200, 1.1)
	if _, err := NewQueryStream(rng, c, 0, 1.1); err == nil {
		t.Error("want error for zero terms")
	}
	tiny := &Corpus{Docs: [][]int{{1}}, Vocab: 3}
	if _, err := NewQueryStream(rng, tiny, 1, 1.1); err == nil {
		t.Error("want error for degenerate corpus")
	}
}

func TestWordString(t *testing.T) {
	if WordString(17) != "w17" {
		t.Fatalf("WordString: %q", WordString(17))
	}
}
