//go:build linux

package linuxsys

import "testing"

func TestSchedAffinityValidates(t *testing.T) {
	if err := SchedAffinity(nil); err == nil {
		t.Error("want error for empty set")
	}
	if err := SchedAffinity([]int{-1}); err == nil {
		t.Error("want error for negative CPU")
	}
}

func TestSchedAffinitySelf(t *testing.T) {
	// Pinning to CPU 0 and then to all CPUs must both succeed in any
	// normal environment (the process necessarily has at least CPU 0).
	if err := SchedAffinity([]int{0}); err != nil {
		t.Skipf("sched_setaffinity unavailable here: %v", err)
	}
	// Restore a broad mask so the rest of the test binary is not pinned.
	wide := make([]int, 64)
	for i := range wide {
		wide[i] = i
	}
	if err := SchedAffinity(wide); err != nil {
		t.Logf("restoring wide mask failed (harmless in constrained envs): %v", err)
	}
}
