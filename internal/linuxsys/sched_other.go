//go:build !linux

package linuxsys

import "fmt"

// SchedAffinity is unavailable off Linux; the dry-run actuator still works
// everywhere.
func SchedAffinity(cpus []int) error {
	return fmt.Errorf("linuxsys: sched_setaffinity requires Linux")
}
