package linuxsys

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// CPUTime is one aggregate /proc/stat snapshot: jiffies the CPUs spent
// busy (user+nice+system+irq+softirq+steal) and total jiffies including
// idle and iowait. The attribution layer in internal/measure uses the
// busy fraction between two snapshots to decide how much of a measured
// energy window was actually compute — RAPL counts the whole package,
// so on an idle machine the meter would otherwise charge sessions for
// joules nobody's work consumed.
type CPUTime struct {
	BusyJiffies  uint64
	TotalJiffies uint64
}

// ReadCPUTime parses the aggregate "cpu " line of <root>/stat (root = ""
// means /proc). Tests point root at a synthetic tree.
func ReadCPUTime(root string) (CPUTime, error) {
	if root == "" {
		root = "/proc"
	}
	path := filepath.Join(root, "stat")
	raw, err := os.ReadFile(path)
	if err != nil {
		return CPUTime{}, fmt.Errorf("linuxsys: reading %s: %w", path, err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		// The aggregate line is "cpu" (no digit); per-CPU lines are cpuN.
		if len(fields) < 5 || fields[0] != "cpu" {
			continue
		}
		var c CPUTime
		for i, f := range fields[1:] {
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return CPUTime{}, fmt.Errorf("linuxsys: %s field %d: %w", path, i+1, err)
			}
			c.TotalJiffies += v
			// Fields: user nice system idle iowait irq softirq steal ...
			// idle (3) and iowait (4) are the not-busy columns.
			if i != 3 && i != 4 {
				c.BusyJiffies += v
			}
		}
		return c, nil
	}
	return CPUTime{}, fmt.Errorf("linuxsys: no aggregate cpu line in %s", path)
}

// BusyFraction returns the fraction of CPU time spent busy between two
// snapshots, clamped to [0,1]. A zero or backwards total (counter reset,
// identical snapshots) returns 0 — the caller should treat the window as
// unattributable rather than divide by nothing.
func BusyFraction(prev, cur CPUTime) float64 {
	if cur.TotalJiffies <= prev.TotalJiffies {
		return 0
	}
	busy := float64(cur.BusyJiffies) - float64(prev.BusyJiffies)
	total := float64(cur.TotalJiffies) - float64(prev.TotalJiffies)
	f := busy / total
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// CPUShare samples the host's busy fraction incrementally: each Sample
// call returns the busy fraction since the previous call (the first call
// primes the baseline and returns fallback). Reads that fail — /proc
// missing in a container, a torn read — also return fallback, so the
// attribution layer degrades to "charge the whole window" instead of
// dropping joules on the floor.
type CPUShare struct {
	Root     string  // "" = /proc
	Fallback float64 // returned when no delta is available (default 1)

	prev CPUTime
	have bool
}

// Sample returns the busy fraction since the last call.
func (s *CPUShare) Sample() float64 {
	fallback := s.Fallback
	if fallback == 0 {
		fallback = 1
	}
	cur, err := ReadCPUTime(s.Root)
	if err != nil {
		s.have = false
		return fallback
	}
	if !s.have {
		s.prev, s.have = cur, true
		return fallback
	}
	stale := cur.TotalJiffies <= s.prev.TotalJiffies
	f := BusyFraction(s.prev, cur)
	s.prev = cur
	if stale {
		// No jiffies elapsed (sub-tick sampling) or the counter reset:
		// there is no delta to attribute, so fall back rather than
		// report an artificial 0.
		return fallback
	}
	return f
}
