package linuxsys

import (
	"os"
	"path/filepath"
	"testing"
)

// writeStat materialises a synthetic /proc/stat with one aggregate line.
func writeStat(t *testing.T, dir, cpuLine string) {
	t.Helper()
	body := cpuLine + "\ncpu0 1 2 3 4 5 6 7 8 0 0\nintr 12345\nctxt 678\n"
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReadCPUTime(t *testing.T) {
	dir := t.TempDir()
	// user nice system idle iowait irq softirq steal guest guest_nice
	writeStat(t, dir, "cpu  100 10 50 800 40 5 5 10 0 0")
	c, err := ReadCPUTime(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(100 + 10 + 50 + 5 + 5 + 10); c.BusyJiffies != want {
		t.Fatalf("BusyJiffies = %d, want %d", c.BusyJiffies, want)
	}
	if want := uint64(100 + 10 + 50 + 800 + 40 + 5 + 5 + 10); c.TotalJiffies != want {
		t.Fatalf("TotalJiffies = %d, want %d", c.TotalJiffies, want)
	}
}

func TestReadCPUTimeErrors(t *testing.T) {
	if _, err := ReadCPUTime(t.TempDir()); err == nil {
		t.Fatal("want error for missing stat file")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte("intr 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCPUTime(dir); err == nil {
		t.Fatal("want error for stat without aggregate cpu line")
	}
}

func TestBusyFraction(t *testing.T) {
	prev := CPUTime{BusyJiffies: 100, TotalJiffies: 1000}
	cur := CPUTime{BusyJiffies: 160, TotalJiffies: 1100}
	if got := BusyFraction(prev, cur); got != 0.6 {
		t.Fatalf("BusyFraction = %v, want 0.6", got)
	}
	// Backwards / identical totals: unattributable, not a divide-by-zero.
	if got := BusyFraction(cur, cur); got != 0 {
		t.Fatalf("identical snapshots: got %v, want 0", got)
	}
	if got := BusyFraction(cur, prev); got != 0 {
		t.Fatalf("backwards counter: got %v, want 0", got)
	}
	// Clamped to [0,1] even if busy outruns total (torn reads).
	weird := CPUTime{BusyJiffies: 5000, TotalJiffies: 1100}
	if got := BusyFraction(prev, weird); got != 1 {
		t.Fatalf("clamp: got %v, want 1", got)
	}
}

func TestCPUShareSample(t *testing.T) {
	dir := t.TempDir()
	writeStat(t, dir, "cpu  100 0 0 900 0 0 0 0 0 0")
	s := &CPUShare{Root: dir}
	// First call primes the baseline: fallback (default 1).
	if got := s.Sample(); got != 1 {
		t.Fatalf("priming call = %v, want fallback 1", got)
	}
	writeStat(t, dir, "cpu  150 0 0 950 0 0 0 0 0 0")
	if got := s.Sample(); got != 0.5 {
		t.Fatalf("delta call = %v, want 0.5", got)
	}
	// No elapsed jiffies between calls: fall back, don't report 0.
	if got := s.Sample(); got != 1 {
		t.Fatalf("stale call = %v, want fallback 1", got)
	}
	// Custom fallback honoured when the file disappears.
	s2 := &CPUShare{Root: t.TempDir(), Fallback: 0.25}
	if got := s2.Sample(); got != 0.25 {
		t.Fatalf("missing stat = %v, want fallback 0.25", got)
	}
}
