// Package linuxsys is the real-machine actuation side of JouleGuard: it
// discovers a Linux host's CPU topology and available frequencies from
// sysfs, enumerates the same (cores x clock speed) configuration space the
// paper controls with process affinity masks and cpufrequtils (Sec. 4.2),
// and actuates a configuration by writing cpufreq files and setting the
// process's CPU affinity.
//
// Discovery and actuation take an explicit sysfs root so tests (and
// dry-runs) can point at a synthetic tree; pass "" for the live /sys.
// Frequency writes require the userspace governor and root; affinity uses
// sched_setaffinity on the calling process.
package linuxsys

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Topology describes the actuatable CPU resources found on the host.
type Topology struct {
	CPUs  []int // online logical CPU ids, ascending
	Freqs []int // available frequencies in kHz, ascending (from cpu0)
	root  string
}

// Discover reads the topology from sysfs (root = "" means /sys).
func Discover(root string) (*Topology, error) {
	if root == "" {
		root = "/sys"
	}
	cpuDir := filepath.Join(root, "devices", "system", "cpu")
	entries, err := os.ReadDir(cpuDir)
	if err != nil {
		return nil, fmt.Errorf("linuxsys: reading %s: %w", cpuDir, err)
	}
	t := &Topology{root: root}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "cpu") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimPrefix(name, "cpu"))
		if err != nil {
			continue // cpufreq, cpuidle, ...
		}
		t.CPUs = append(t.CPUs, id)
	}
	if len(t.CPUs) == 0 {
		return nil, fmt.Errorf("linuxsys: no CPUs under %s", cpuDir)
	}
	sort.Ints(t.CPUs)
	// Frequencies: prefer scaling_available_frequencies; fall back to the
	// min/max pair many drivers expose.
	freqDir := filepath.Join(cpuDir, "cpu0", "cpufreq")
	if raw, err := os.ReadFile(filepath.Join(freqDir, "scaling_available_frequencies")); err == nil {
		for _, f := range strings.Fields(string(raw)) {
			if v, err := strconv.Atoi(f); err == nil && v > 0 {
				t.Freqs = append(t.Freqs, v)
			}
		}
	}
	if len(t.Freqs) == 0 {
		var lohi []int
		for _, name := range []string{"scaling_min_freq", "scaling_max_freq"} {
			raw, err := os.ReadFile(filepath.Join(freqDir, name))
			if err != nil {
				continue
			}
			if v, err := strconv.Atoi(strings.TrimSpace(string(raw))); err == nil && v > 0 {
				lohi = append(lohi, v)
			}
		}
		if len(lohi) == 2 && lohi[1] > lohi[0] {
			// Synthesise a modest ladder between min and max.
			const steps = 8
			for i := 0; i < steps; i++ {
				t.Freqs = append(t.Freqs, lohi[0]+(lohi[1]-lohi[0])*i/(steps-1))
			}
		}
	}
	if len(t.Freqs) == 0 {
		return nil, fmt.Errorf("linuxsys: no cpufreq information under %s", freqDir)
	}
	sort.Ints(t.Freqs)
	t.Freqs = dedupInts(t.Freqs)
	return t, nil
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Config is one actuatable configuration: the first Cores CPUs at FreqKHz.
type Config struct {
	Cores   int
	FreqKHz int
}

// Configs enumerates the (cores x frequency) space in the paper's Fig. 3
// index convention: the highest index is all cores at the highest clock.
func (t *Topology) Configs() []Config {
	out := make([]Config, 0, len(t.CPUs)*len(t.Freqs))
	for c := 1; c <= len(t.CPUs); c++ {
		for _, f := range t.Freqs {
			out = append(out, Config{Cores: c, FreqKHz: f})
		}
	}
	return out
}

// NumConfigs returns the configuration-space size.
func (t *Topology) NumConfigs() int { return len(t.CPUs) * len(t.Freqs) }

// DefaultConfig is the all-resources index.
func (t *Topology) DefaultConfig() int { return t.NumConfigs() - 1 }

// Affinity is the CPU-mask side of actuation; injected so tests (and
// non-Linux builds) can observe calls without touching the scheduler. Use
// SchedAffinity for the real thing.
type Affinity func(cpus []int) error

// Actuator applies Config choices to the machine.
type Actuator struct {
	topo     *Topology
	affinity Affinity
	// DryRun collects the writes instead of performing them.
	DryRun bool
	Log    []string
}

// NewActuator builds an actuator over a topology. affinity may be nil in
// DryRun mode.
func NewActuator(topo *Topology, affinity Affinity) (*Actuator, error) {
	if topo == nil {
		return nil, fmt.Errorf("linuxsys: nil topology")
	}
	return &Actuator{topo: topo, affinity: affinity}, nil
}

// Apply actuates configuration index i: pins the process to the first
// Cores CPUs and writes the frequency setpoint for every online CPU.
func (a *Actuator) Apply(i int) error {
	cfgs := a.topo.Configs()
	if i < 0 || i >= len(cfgs) {
		return fmt.Errorf("linuxsys: config %d out of range [0,%d)", i, len(cfgs))
	}
	cfg := cfgs[i]
	cpus := a.topo.CPUs[:cfg.Cores]
	if a.DryRun {
		a.Log = append(a.Log, fmt.Sprintf("affinity %v", cpus))
	} else {
		if a.affinity == nil {
			return fmt.Errorf("linuxsys: no affinity function configured")
		}
		if err := a.affinity(cpus); err != nil {
			return fmt.Errorf("linuxsys: affinity: %w", err)
		}
	}
	for _, cpu := range a.topo.CPUs {
		path := filepath.Join(a.topo.root, "devices", "system", "cpu",
			fmt.Sprintf("cpu%d", cpu), "cpufreq", "scaling_setspeed")
		val := strconv.Itoa(cfg.FreqKHz)
		if a.DryRun {
			a.Log = append(a.Log, fmt.Sprintf("write %s <- %s", path, val))
			continue
		}
		if err := os.WriteFile(path, []byte(val), 0o644); err != nil {
			return fmt.Errorf("linuxsys: setting %s: %w", path, err)
		}
	}
	return nil
}

// RetryPolicy controls ApplyWithRetry. Sysfs writes fail transiently on
// real hosts — a contended cpufreq lock returns EBUSY, a governor change
// races the write — so actuation retries with capped exponential backoff
// before giving up. The zero value selects the defaults.
type RetryPolicy struct {
	MaxAttempts int                 // total attempts including the first (default 4)
	BaseDelay   time.Duration       // delay before the first retry (default 10ms)
	MaxDelay    time.Duration       // backoff cap (default 250ms)
	Sleep       func(time.Duration) // injectable for tests (default time.Sleep)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Do runs op under the policy's capped exponential backoff: transient
// failures are retried until MaxAttempts, with the delay doubling from
// BaseDelay up to MaxDelay. It is the shared retry primitive behind
// actuation (ApplyWithRetry) and the RAPL counter reads in
// internal/sensors — sysfs reads and writes both fail transiently on
// real hosts, and both paths must survive that without losing a control
// period or a sample. The returned error is the last attempt's.
func (p RetryPolicy) Do(op func() error) (attempts int, err error) {
	p = p.withDefaults()
	delay := p.BaseDelay
	for attempts = 1; ; attempts++ {
		if err = op(); err == nil {
			return attempts, nil
		}
		if attempts >= p.MaxAttempts {
			return attempts, fmt.Errorf("linuxsys: giving up after %d attempts: %w", attempts, err)
		}
		p.Sleep(delay)
		delay *= 2
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// ApplyWithRetry actuates configuration index i, retrying transient
// failures per the policy. An out-of-range index is permanent and fails
// immediately — retrying a bug wastes the control period. The returned
// error is the last attempt's; attempts reports how many were made.
func (a *Actuator) ApplyWithRetry(i int, policy RetryPolicy) (attempts int, err error) {
	if i < 0 || i >= a.topo.NumConfigs() {
		return 0, fmt.Errorf("linuxsys: config %d out of range [0,%d)", i, a.topo.NumConfigs())
	}
	return policy.Do(func() error { return a.Apply(i) })
}
