package linuxsys

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fakeSys builds a synthetic /sys tree with the given CPUs and frequencies.
func fakeSys(t *testing.T, cpus int, freqs []int, availFile bool) string {
	t.Helper()
	root := t.TempDir()
	for c := 0; c < cpus; c++ {
		dir := filepath.Join(root, "devices", "system", "cpu", "cpu"+strconv.Itoa(c), "cpufreq")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if availFile {
			var parts []string
			for _, f := range freqs {
				parts = append(parts, strconv.Itoa(f))
			}
			if err := os.WriteFile(filepath.Join(dir, "scaling_available_frequencies"),
				[]byte(strings.Join(parts, " ")+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		} else {
			os.WriteFile(filepath.Join(dir, "scaling_min_freq"),
				[]byte(strconv.Itoa(freqs[0])+"\n"), 0o644)
			os.WriteFile(filepath.Join(dir, "scaling_max_freq"),
				[]byte(strconv.Itoa(freqs[len(freqs)-1])+"\n"), 0o644)
		}
		if err := os.WriteFile(filepath.Join(dir, "scaling_setspeed"), []byte("0\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Distractor entries Discover must skip.
	os.MkdirAll(filepath.Join(root, "devices", "system", "cpu", "cpufreq"), 0o755)
	os.MkdirAll(filepath.Join(root, "devices", "system", "cpu", "cpuidle"), 0o755)
	return root
}

func TestDiscover(t *testing.T) {
	root := fakeSys(t, 4, []int{800000, 1200000, 2000000}, true)
	topo, err := Discover(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.CPUs) != 4 || topo.CPUs[0] != 0 || topo.CPUs[3] != 3 {
		t.Fatalf("cpus: %v", topo.CPUs)
	}
	if len(topo.Freqs) != 3 || topo.Freqs[0] != 800000 || topo.Freqs[2] != 2000000 {
		t.Fatalf("freqs: %v", topo.Freqs)
	}
	if topo.NumConfigs() != 12 || topo.DefaultConfig() != 11 {
		t.Fatalf("configs: %d default %d", topo.NumConfigs(), topo.DefaultConfig())
	}
}

func TestDiscoverMinMaxFallback(t *testing.T) {
	root := fakeSys(t, 2, []int{1000000, 3000000}, false)
	topo, err := Discover(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Freqs) < 2 {
		t.Fatalf("synthesised ladder too small: %v", topo.Freqs)
	}
	if topo.Freqs[0] != 1000000 || topo.Freqs[len(topo.Freqs)-1] != 3000000 {
		t.Fatalf("ladder endpoints: %v", topo.Freqs)
	}
}

func TestDiscoverErrors(t *testing.T) {
	if _, err := Discover(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("want error for missing root")
	}
	// CPUs but no cpufreq at all.
	root := t.TempDir()
	os.MkdirAll(filepath.Join(root, "devices", "system", "cpu", "cpu0"), 0o755)
	if _, err := Discover(root); err == nil {
		t.Error("want error for missing cpufreq")
	}
}

func TestConfigsShape(t *testing.T) {
	root := fakeSys(t, 3, []int{1, 2}, true)
	topo, _ := Discover(root)
	cfgs := topo.Configs()
	if len(cfgs) != 6 {
		t.Fatalf("configs: %d", len(cfgs))
	}
	// Highest index = all cores at max clock (the Fig. 3 convention).
	last := cfgs[len(cfgs)-1]
	if last.Cores != 3 || last.FreqKHz != 2 {
		t.Fatalf("default config: %+v", last)
	}
	first := cfgs[0]
	if first.Cores != 1 || first.FreqKHz != 1 {
		t.Fatalf("lowest config: %+v", first)
	}
}

func TestActuatorDryRun(t *testing.T) {
	root := fakeSys(t, 2, []int{500, 900}, true)
	topo, _ := Discover(root)
	a, err := NewActuator(topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.DryRun = true
	if err := a.Apply(topo.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if len(a.Log) != 3 { // 1 affinity + 2 freq writes
		t.Fatalf("dry-run log: %v", a.Log)
	}
	if !strings.Contains(a.Log[0], "affinity [0 1]") {
		t.Fatalf("affinity entry: %q", a.Log[0])
	}
	if !strings.Contains(a.Log[1], "900") {
		t.Fatalf("freq entry: %q", a.Log[1])
	}
}

func TestActuatorAppliesWrites(t *testing.T) {
	root := fakeSys(t, 2, []int{500, 900}, true)
	topo, _ := Discover(root)
	var pinned []int
	a, err := NewActuator(topo, func(cpus []int) error {
		pinned = append([]int(nil), cpus...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(0); err != nil { // 1 core at 500
		t.Fatal(err)
	}
	if len(pinned) != 1 || pinned[0] != 0 {
		t.Fatalf("pinned: %v", pinned)
	}
	raw, err := os.ReadFile(filepath.Join(root, "devices", "system", "cpu", "cpu1", "cpufreq", "scaling_setspeed"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(raw)) != "500" {
		t.Fatalf("setspeed: %q", raw)
	}
}

func TestActuatorErrors(t *testing.T) {
	root := fakeSys(t, 2, []int{500}, true)
	topo, _ := Discover(root)
	if _, err := NewActuator(nil, nil); err == nil {
		t.Error("want error for nil topology")
	}
	a, _ := NewActuator(topo, nil)
	if err := a.Apply(-1); err == nil {
		t.Error("want error for bad index")
	}
	if err := a.Apply(0); err == nil {
		t.Error("want error without affinity function")
	}
	failing, _ := NewActuator(topo, func([]int) error { return errors.New("denied") })
	if err := failing.Apply(0); err == nil {
		t.Error("want propagated affinity error")
	}
}

func TestApplyWithRetryRecoversFromTransientFailure(t *testing.T) {
	root := fakeSys(t, 2, []int{500, 900}, true)
	topo, _ := Discover(root)
	calls := 0
	a, err := NewActuator(topo, func(cpus []int) error {
		calls++
		if calls < 3 {
			return errors.New("EBUSY")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	attempts, err := a.ApplyWithRetry(0, RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    25 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts: %d, want 3", attempts)
	}
	// Backoff doubles then caps: 10ms, 20ms.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoff: %v, want %v", slept, want)
	}
}

func TestApplyWithRetryBackoffCaps(t *testing.T) {
	root := fakeSys(t, 1, []int{500}, true)
	topo, _ := Discover(root)
	a, _ := NewActuator(topo, func([]int) error { return errors.New("EBUSY") })
	var slept []time.Duration
	attempts, err := a.ApplyWithRetry(0, RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    15 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	if err == nil {
		t.Fatal("persistent failure must surface")
	}
	if attempts != 5 {
		t.Fatalf("attempts: %d, want 5", attempts)
	}
	for i, d := range slept {
		if d > 15*time.Millisecond {
			t.Fatalf("sleep %d exceeded the cap: %v", i, d)
		}
	}
}

func TestApplyWithRetryPermanentErrorFailsFast(t *testing.T) {
	root := fakeSys(t, 1, []int{500}, true)
	topo, _ := Discover(root)
	a, _ := NewActuator(topo, func([]int) error { return nil })
	slept := false
	attempts, err := a.ApplyWithRetry(99, RetryPolicy{Sleep: func(time.Duration) { slept = true }})
	if err == nil {
		t.Fatal("out-of-range index must error")
	}
	if attempts != 0 || slept {
		t.Fatalf("permanent error must not retry: attempts=%d slept=%v", attempts, slept)
	}
}
