//go:build linux

package linuxsys

import (
	"fmt"
	"syscall"
	"unsafe"
)

// SchedAffinity pins the calling process to the given CPUs via the raw
// sched_setaffinity(2) syscall — the stdlib-only equivalent of the paper's
// "process affinity masks" (Sec. 4.2).
func SchedAffinity(cpus []int) error {
	if len(cpus) == 0 {
		return fmt.Errorf("linuxsys: empty CPU set")
	}
	const wordBits = 8 * int(unsafe.Sizeof(uintptr(0)))
	max := 0
	for _, c := range cpus {
		if c < 0 {
			return fmt.Errorf("linuxsys: negative CPU id %d", c)
		}
		if c > max {
			max = c
		}
	}
	mask := make([]uintptr, max/wordBits+1)
	for _, c := range cpus {
		mask[c/wordBits] |= 1 << (c % wordBits)
	}
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, // current process
		uintptr(len(mask))*unsafe.Sizeof(uintptr(0)),
		uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return fmt.Errorf("linuxsys: sched_setaffinity: %w", errno)
	}
	return nil
}
