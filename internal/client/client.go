// Package client is the governor daemon's client library: it mirrors
// the in-process OnlineController contract — bracket each unit of work
// with Next/Done — over the wire protocol of internal/wire, so an
// application ports from local to remote governance in a handful of
// lines:
//
//	sess, _ := client.Open(client.Options{
//		BaseURL: "http://localhost:7077", Tenant: "encoder",
//		App: "x264", Platform: "Server", Iterations: 500, Factor: 2,
//	}, readEnergyJ, nowSeconds)
//	defer sess.Close()
//	for i := 0; i < frames; i++ {
//		appCfg, sysCfg, _ := sess.Next()
//		applyConfigs(appCfg, sysCfg)
//		encodeFrame(i)
//		sess.Done(measuredAccuracy)
//	}
//
// Transient transport failures and daemon restarts are absorbed by
// capped exponential backoff (the actuation-retry pattern of
// internal/linuxsys, hardened by the PR1 fault suite): retryable
// failures — connection errors, 5xx, the daemon's "draining" reply —
// are retried; protocol errors are not. A daemon restart that loses the
// in-flight iteration is re-bracketed transparently: the server's
// sequencing contract (wire.CodeBadSequence) tells the client exactly
// which side of the bracket was lost, and the cumulative energy meter
// lets the restored governor's sensing guard reconcile the gap.
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"jouleguard/internal/wire"
)

// RetryPolicy controls how wire calls survive transient failures, with
// capped exponential backoff between attempts.
type RetryPolicy struct {
	MaxAttempts int                 // total attempts per call (default 8)
	BaseDelay   time.Duration       // delay before the first retry (default 25ms)
	MaxDelay    time.Duration       // backoff cap (default 1s)
	Sleep       func(time.Duration) // injectable for tests (default time.Sleep)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Options configures a remote session; the registration fields mirror
// wire.RegisterRequest.
type Options struct {
	BaseURL string // daemon address, e.g. "http://localhost:7077"

	Tenant      string
	Weight      float64
	App         string
	Platform    string
	Iterations  int
	Factor      float64 // energy-reduction factor; or
	BudgetJ     float64 // absolute joule request; both zero = weighted share
	MinAccuracy float64
	Seed        int64
	IdleTimeout time.Duration // server-side idle expiry override

	HTTPClient *http.Client // default http.DefaultClient
	Retry      RetryPolicy
}

// Error is a protocol-level failure carrying the daemon's stable code.
type Error struct {
	Code    string
	Message string
	Status  int
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("client: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// Session is a remote-governed control loop. Not safe for concurrent
// use — like the OnlineController it mirrors, one Session belongs to
// one control loop.
type Session struct {
	id         string
	base       string
	httpc      *http.Client
	retry      RetryPolicy
	readEnergy func() (float64, error)
	now        func() float64

	grantJ     float64
	iterations int
	appConfigs int
	sysConfigs int

	armed    bool
	lastDone wire.DoneResponse
	closed   bool
}

// Open registers a session with the daemon. readEnergy returns the
// application's cumulative joule counter; now returns seconds on a
// monotone clock — the same instruments NewOnline takes, measured
// client-side so network latency never pollutes the intervals.
func Open(opts Options, readEnergy func() (float64, error), now func() float64) (*Session, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("client: empty BaseURL")
	}
	if readEnergy == nil || now == nil {
		return nil, fmt.Errorf("client: nil energy reader or clock")
	}
	httpc := opts.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	s := &Session{
		base:       strings.TrimRight(opts.BaseURL, "/"),
		httpc:      httpc,
		retry:      opts.Retry.withDefaults(),
		readEnergy: readEnergy,
		now:        now,
	}
	req := wire.RegisterRequest{
		Tenant:       opts.Tenant,
		Weight:       opts.Weight,
		App:          opts.App,
		Platform:     opts.Platform,
		Iterations:   opts.Iterations,
		Factor:       opts.Factor,
		BudgetJ:      opts.BudgetJ,
		MinAccuracy:  opts.MinAccuracy,
		Seed:         opts.Seed,
		IdleTimeoutS: opts.IdleTimeout.Seconds(),
	}
	var resp wire.RegisterResponse
	if err := s.call("POST", wire.BasePath, req, &resp); err != nil {
		return nil, err
	}
	s.id = resp.SessionID
	s.grantJ = resp.GrantJ
	s.iterations = resp.Iterations
	s.appConfigs = resp.AppConfigs
	s.sysConfigs = resp.SysConfigs
	return s, nil
}

// ID returns the daemon-assigned session id.
func (s *Session) ID() string { return s.id }

// GrantJ returns the joule budget the broker committed to this session.
func (s *Session) GrantJ() float64 { return s.grantJ }

// Iterations returns the registered workload length.
func (s *Session) Iterations() int { return s.iterations }

// Configs returns the sizes of the application and system configuration
// spaces the daemon decides over.
func (s *Session) Configs() (app, sys int) { return s.appConfigs, s.sysConfigs }

// LastStatus returns the ledger view from the most recent Done.
func (s *Session) LastStatus() wire.DoneResponse { return s.lastDone }

// Next fetches the configurations for the upcoming iteration and starts
// its interval on the local clock. If the previous iteration's Done was
// lost to a daemon restart, Next transparently re-brackets: the daemon's
// bad-sequence reply is resolved by reporting the lost iteration as an
// estimated observation first.
func (s *Session) Next() (appCfg, sysCfg int, err error) {
	if s.closed {
		return 0, 0, fmt.Errorf("client: session %s is closed", s.id)
	}
	var resp wire.NextResponse
	err = s.call("POST", s.path("next"), wire.NextRequest{NowS: s.now()}, &resp)
	if IsCode(err, wire.CodeBadSequence) && !s.armed {
		// The daemon believes an iteration is armed but we never issued
		// one it remembers — a retried Next whose first reply was lost.
		// Settle the phantom bracket with an estimated sample, then ask
		// again.
		if derr := s.reportDone(1, true); derr != nil {
			return 0, 0, fmt.Errorf("client: recovering lost Next reply: %w", derr)
		}
		err = s.call("POST", s.path("next"), wire.NextRequest{NowS: s.now()}, &resp)
	}
	if err != nil {
		return 0, 0, err
	}
	s.armed = true
	return resp.AppConfig, resp.SysConfig, nil
}

// Done reports the completed iteration: the local clock, the cumulative
// energy reading and the application's accuracy measure. If the daemon
// restarted and lost the bracket, Done re-brackets the iteration
// (Next then Done) so the work — and its energy, reconciled through the
// cumulative counter — is still accounted.
func (s *Session) Done(accuracy float64) error {
	if s.closed {
		return fmt.Errorf("client: session %s is closed", s.id)
	}
	err := s.reportDone(accuracy, false)
	if IsCode(err, wire.CodeBadSequence) {
		// The daemon lost our Next to a restart: its restored state sits
		// at the last completed iteration. Re-bracket: issue Next (we
		// discard the decision — the work already ran) and report again.
		var nresp wire.NextResponse
		if nerr := s.call("POST", s.path("next"), wire.NextRequest{NowS: s.now()}, &nresp); nerr != nil {
			return fmt.Errorf("client: re-bracketing after daemon restart: %w", nerr)
		}
		err = s.reportDone(accuracy, false)
	}
	if err != nil {
		return err
	}
	s.armed = false
	return nil
}

// reportDone sends one Done sample. estimated forces the energy-error
// flag so the daemon treats the sample as a model-based estimate (used
// when settling a phantom bracket whose work we cannot attribute).
func (s *Session) reportDone(accuracy float64, estimated bool) error {
	energy, eerr := s.readEnergy()
	req := wire.DoneRequest{
		NowS:      s.now(),
		EnergyJ:   energy,
		EnergyErr: eerr != nil || estimated,
		Accuracy:  accuracy,
	}
	var resp wire.DoneResponse
	if err := s.call("POST", s.path("done"), req, &resp); err != nil {
		return err
	}
	s.lastDone = resp
	return nil
}

// Info fetches the daemon's introspection view of this session,
// including the governor's learned per-arm estimates.
func (s *Session) Info() (wire.SessionInfo, error) {
	var info wire.SessionInfo
	err := s.call("GET", s.path(""), nil, &info)
	return info, err
}

// Close tears the session down, releasing its budget grant to the
// broker. Closing twice is an error (the daemon reports the session
// gone).
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	var resp wire.CloseResponse
	if err := s.call("DELETE", s.path(""), nil, &resp); err != nil {
		return err
	}
	s.closed = true
	s.lastDone.SpentJ = resp.SpentJ
	return nil
}

func (s *Session) path(op string) string {
	p := wire.BasePath + "/" + s.id
	if op != "" {
		p += "/" + op
	}
	return p
}

// IsCode reports whether err is (or wraps) a protocol Error with the
// given wire code.
func IsCode(err error, code string) bool {
	if err == nil {
		return false
	}
	var e *Error
	return errors.As(err, &e) && e.Code == code
}

// call performs one wire call with retry/backoff. Transport failures,
// 5xx replies and the draining code are retried with capped exponential
// backoff; protocol errors return immediately as *Error.
func (s *Session) call(method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return err
		}
	}
	p := s.retry
	delay := p.BaseDelay
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			p.Sleep(delay)
			delay *= 2
			if delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, s.base+path, rd)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := s.httpc.Do(req)
		if err != nil {
			lastErr = err // connection refused mid-restart, reset, ...
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if out == nil {
				return nil
			}
			return json.Unmarshal(raw, out)
		}
		var werr wire.ErrorResponse
		if uerr := json.Unmarshal(raw, &werr); uerr != nil || werr.Code == "" {
			werr = wire.ErrorResponse{Code: wire.CodeBadRequest, Error: strings.TrimSpace(string(raw))}
		}
		perr := &Error{Code: werr.Code, Message: werr.Error, Status: resp.StatusCode}
		if resp.StatusCode >= 500 || werr.Code == wire.CodeDraining {
			lastErr = perr // the daemon is restarting or unwell: retry
			continue
		}
		return perr
	}
	return fmt.Errorf("client: %s %s failed after %d attempts: %w", method, path, p.MaxAttempts, lastErr)
}
