// Package client is the governor daemon's client library: it mirrors
// the in-process OnlineController contract — bracket each unit of work
// with Next/Done — over the wire protocol of internal/wire, so an
// application ports from local to remote governance in a handful of
// lines:
//
//	sess, _ := client.Open(ctx, client.Options{
//		BaseURL: "http://localhost:7077", Tenant: "encoder",
//		App: "x264", Platform: "Server", Iterations: 500, Factor: 2,
//	}, readEnergyJ, nowSeconds)
//	defer sess.Close(ctx)
//	for i := 0; i < frames; i++ {
//		appCfg, sysCfg, _ := sess.Next(ctx)
//		applyConfigs(appCfg, sysCfg)
//		encodeFrame(i)
//		sess.Done(ctx, measuredAccuracy)
//	}
//
// Every call takes a context: cancellation aborts in-flight requests
// and the retry/backoff loop alike, and Options.RequestTimeout bounds
// each individual attempt.
//
// Transient transport failures and daemon restarts are absorbed by
// capped exponential backoff (the actuation-retry pattern of
// internal/linuxsys, hardened by the PR1 fault suite): retryable
// failures — connection errors, 5xx, the daemon's "draining" reply —
// are retried; protocol errors are not. A daemon restart that loses the
// in-flight iteration is re-bracketed transparently: the server's
// sequencing contract (wire.CodeBadSequence) tells the client exactly
// which side of the bracket was lost, and the cumulative energy meter
// lets the restored governor's sensing guard reconcile the gap.
//
// In a fleet (Options.CoordinatorURL + Options.Key), the client also
// rides through node death: when the owning daemon becomes unreachable
// or refuses its lease, the client asks the coordinator where the
// session lives now, re-registers there (attaching by key to the
// failed-over session), and catches the restored state up by replaying
// its own record of completed iterations that the coordinator had not
// yet acked — so the migrated governor resumes from exactly the
// decision history the application experienced.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// RetryPolicy controls how wire calls survive transient failures, with
// capped exponential backoff between attempts.
type RetryPolicy struct {
	MaxAttempts int                 // total attempts per call (default 8)
	BaseDelay   time.Duration       // delay before the first retry (default 25ms)
	MaxDelay    time.Duration       // backoff cap (default 1s)
	Sleep       func(time.Duration) // injectable for tests (default: context-aware sleep)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// sleep waits out one backoff delay, aborting early on cancellation.
func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		p.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Options configures a remote session; the registration fields mirror
// wire.RegisterRequest.
type Options struct {
	BaseURL string // daemon address, e.g. "http://localhost:7077"

	// CoordinatorURL points at the fleet coordinator. When set (with
	// Key), Open asks the coordinator which node owns the session and
	// registers there, and session calls fail over to the session's new
	// owner when the current node dies. BaseURL may then be empty.
	CoordinatorURL string
	// CoordinatorURLs is the ordered failover list tried after
	// CoordinatorURL: when the active coordinator is unreachable, still a
	// standby (not_primary), or deposed (stale_epoch), placement rotates
	// to the next entry. Placements carry a fencing epoch; the client
	// keeps the highest one seen and discards answers from older reigns.
	CoordinatorURLs []string
	// Key is the stable cross-node session identity (required for
	// coordinator placement and failover).
	Key string

	Tenant      string
	Tier        string // QoS tier claim: guaranteed | standard | best-effort ("" = standard)
	Weight      float64
	App         string
	Platform    string
	Iterations  int
	Factor      float64 // energy-reduction factor; or
	BudgetJ     float64 // absolute joule request; both zero = weighted share
	MinAccuracy float64
	Seed        int64
	IdleTimeout time.Duration // server-side idle expiry override

	// RequestTimeout bounds each individual attempt (0 = only the
	// caller's context bounds it).
	RequestTimeout time.Duration

	// HistoryCap bounds the completed-iteration record kept for failover
	// catch-up (default 4096; iterations past the window are replayed as
	// estimated observations instead of exact ones).
	HistoryCap int

	// DisableV2 pins the session to v1 JSON/HTTP even when the daemon
	// offers the v2 frame stream (diagnostics; v1 is always available).
	DisableV2 bool

	// TraceEvery head-samples distributed traces: every TraceEvery-th
	// governed round-trip (and always the first) mints a 64-bit trace
	// context that rides the wire and is recorded at every hop. 0 means
	// the default 1/256; negative disables tracing entirely.
	TraceEvery int
	// Tracer records the client-side root spans of sampled rounds (nil:
	// contexts are still minted and propagated, but nothing is recorded
	// locally).
	Tracer *telemetry.SpanBuffer

	HTTPClient *http.Client // default: a tuned keep-alive pool (defaultHTTPClient)
	Retry      RetryPolicy
}

// defaultHTTPClient is the v1 transport used when Options.HTTPClient is
// nil. http.DefaultClient caps idle conns per host at 2, which
// serializes a many-session process onto a trickle of connections and
// pays a TCP handshake per call beyond them; the hot path lives or dies
// on connection reuse, so the pool is sized explicitly.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		ForceAttemptHTTP2:   true,
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     90 * time.Second,
	},
}

// Error is a protocol-level failure carrying the daemon's stable code.
type Error struct {
	Code    string
	Message string
	Status  int
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("client: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// errExhausted marks a call that burned its whole retry budget; in a
// fleet that is the cue to ask the coordinator for the session's new
// home.
var errExhausted = errors.New("client: retries exhausted")

// iterHist is the client's own record of one completed iteration — the
// raw observations it reported. It is what failover catch-up replays,
// which is why the restored governor's state is bit-identical: the new
// node sees exactly the samples the old one did.
type iterHist struct {
	nextNow   float64
	doneNow   float64
	energyJ   float64
	energyErr bool
	accuracy  float64
}

// Session is a remote-governed control loop. Not safe for concurrent
// use — like the OnlineController it mirrors, one Session belongs to
// one control loop.
type Session struct {
	id         string
	base       string
	coords     []string // ordered coordinator list; empty outside a fleet
	coordIdx   int      // index of the coordinator currently believed primary
	fence      int64    // highest coordinator fencing epoch seen
	reg        wire.RegisterRequest
	httpc      *http.Client
	retry      RetryPolicy
	timeout    time.Duration
	readEnergy func() (float64, error)
	now        func() float64

	grantJ     float64
	iterations int
	appConfigs int
	sysConfigs int

	armed    bool
	armedNow float64
	lastDone wire.DoneResponse
	closed   bool

	num        uint32    // numeric session id for v2 frame headers (0 = v1 only)
	v2         *v2Stream // live upgraded stream, nil until first use
	v2Off      bool      // v2 off for the current node (dial failed / closed)
	v2Disabled bool      // v2 off for the session's lifetime (Options.DisableV2)

	hist     []iterHist // ring of completed iterations [histBase, histBase+len)
	histBase int
	histHead int // ring slot holding iteration histBase
	histCap  int

	traceEvery int // sampled round-trips per trace (0 = disabled)
	tracer     *telemetry.SpanBuffer
	traceSeed  uint64
	rounds     uint64 // governed round-trips issued (sampling counter)
	curTrace   uint64 // context of the iteration currently armed
	curSpan    uint64
	lastTrace  uint64 // most recent minted trace id (introspection)

	failovers      int
	coordFailovers int
}

// Open registers a session with the daemon. readEnergy returns the
// application's cumulative joule counter; now returns seconds on a
// monotone clock — the same instruments NewOnline takes, measured
// client-side so network latency never pollutes the intervals.
func Open(ctx context.Context, opts Options, readEnergy func() (float64, error), now func() float64) (*Session, error) {
	coords := make([]string, 0, 1+len(opts.CoordinatorURLs))
	if opts.CoordinatorURL != "" {
		coords = append(coords, strings.TrimRight(opts.CoordinatorURL, "/"))
	}
	for _, u := range opts.CoordinatorURLs {
		coords = append(coords, strings.TrimRight(u, "/"))
	}
	if opts.BaseURL == "" && len(coords) == 0 {
		return nil, fmt.Errorf("client: need BaseURL or CoordinatorURL")
	}
	if len(coords) > 0 && opts.Key == "" {
		return nil, fmt.Errorf("client: coordinator placement requires a session Key")
	}
	if readEnergy == nil || now == nil {
		return nil, fmt.Errorf("client: nil energy reader or clock")
	}
	httpc := opts.HTTPClient
	if httpc == nil {
		httpc = defaultHTTPClient
	}
	histCap := opts.HistoryCap
	if histCap <= 0 {
		histCap = 4096
	}
	traceEvery := opts.TraceEvery
	if traceEvery == 0 {
		traceEvery = 256
	} else if traceEvery < 0 {
		traceEvery = 0
	}
	s := &Session{
		base:       strings.TrimRight(opts.BaseURL, "/"),
		coords:     coords,
		httpc:      httpc,
		retry:      opts.Retry.withDefaults(),
		timeout:    opts.RequestTimeout,
		readEnergy: readEnergy,
		now:        now,
		histCap:    histCap,
		v2Disabled: opts.DisableV2,
		traceEvery: traceEvery,
		tracer:     opts.Tracer,
	}
	seed := uint64(14695981039346656037)
	for _, b := range []byte(opts.Tenant + "\x00" + opts.Key) {
		seed = (seed ^ uint64(b)) * 1099511628211
	}
	s.traceSeed = seed ^ uint64(opts.Seed)
	s.reg = wire.RegisterRequest{
		Tenant:       opts.Tenant,
		Tier:         opts.Tier,
		Key:          opts.Key,
		Weight:       opts.Weight,
		App:          opts.App,
		Platform:     opts.Platform,
		Iterations:   opts.Iterations,
		Factor:       opts.Factor,
		BudgetJ:      opts.BudgetJ,
		MinAccuracy:  opts.MinAccuracy,
		Seed:         opts.Seed,
		IdleTimeoutS: opts.IdleTimeout.Seconds(),
	}
	if len(s.coords) > 0 {
		place, err := s.place(ctx)
		if err != nil {
			return nil, err
		}
		s.base = place.Addr
	}
	var resp wire.RegisterResponse
	if err := s.call(ctx, "POST", wire.BasePath, s.reg, &resp); err != nil {
		return nil, err
	}
	s.id = resp.SessionID
	s.num = resp.SessionNum
	s.grantJ = resp.GrantJ
	s.iterations = resp.Iterations
	s.appConfigs = resp.AppConfigs
	s.sysConfigs = resp.SysConfigs
	return s, nil
}

// ID returns the daemon-assigned session id.
func (s *Session) ID() string { return s.id }

// GrantJ returns the joule budget the broker committed to this session.
func (s *Session) GrantJ() float64 { return s.grantJ }

// Iterations returns the registered workload length.
func (s *Session) Iterations() int { return s.iterations }

// Configs returns the sizes of the application and system configuration
// spaces the daemon decides over.
func (s *Session) Configs() (app, sys int) { return s.appConfigs, s.sysConfigs }

// LastStatus returns the ledger view from the most recent Done.
func (s *Session) LastStatus() wire.DoneResponse { return s.lastDone }

// Failovers reports how many times this session migrated to a new node.
func (s *Session) Failovers() int { return s.failovers }

// CoordFailovers reports how many times placement switched to a
// different coordinator in the ordered list.
func (s *Session) CoordFailovers() int { return s.coordFailovers }

// Fence reports the highest coordinator fencing epoch this session has
// seen.
func (s *Session) Fence() int64 { return s.fence }

// LastTraceID reports the most recently minted trace id (0 until the
// first sampled round) — the handle tests and harnesses use to join the
// trace across nodes.
func (s *Session) LastTraceID() uint64 { return s.lastTrace }

// mintTrace head-samples the upcoming governed round-trip: every
// traceEvery-th round (and always the first, so even short sessions
// leave one trace) mints a trace context; every other round returns
// zeros and tracing is an untaken branch the rest of the way down.
func (s *Session) mintTrace() (trace, span uint64) {
	if s.traceEvery == 0 {
		return 0, 0
	}
	n := s.rounds
	s.rounds++
	if n%uint64(s.traceEvery) != 0 {
		return 0, 0
	}
	trace = telemetry.MintTraceID(s.traceSeed, n)
	if s.tracer != nil {
		span = s.tracer.NextID()
	} else {
		span = telemetry.MintTraceID(trace, n)
	}
	s.lastTrace = trace
	return trace, span
}

// recordClientSpan records the client-side root span of a sampled
// round-trip (the hop every server-side span parents to).
func (s *Session) recordClientSpan(trace, span uint64, startS, endS float64, iter int) {
	if s.tracer == nil || trace == 0 {
		return
	}
	s.tracer.Record(telemetry.Span{
		Trace: trace, ID: span,
		Name: telemetry.SpanClientSend, Session: s.id,
		StartS: startS, EndS: endS, AttrIter: iter,
	})
}

// Next fetches the configurations for the upcoming iteration and starts
// its interval on the local clock. If the previous iteration's Done was
// lost to a daemon restart, Next transparently re-brackets: the daemon's
// bad-sequence reply is resolved by reporting the lost iteration as an
// estimated observation first.
func (s *Session) Next(ctx context.Context) (appCfg, sysCfg int, err error) {
	if s.closed {
		return 0, 0, fmt.Errorf("client: session %s is closed", s.id)
	}
	nowS := s.now()
	trace, span := s.mintTrace()
	req := wire.NextRequest{NowS: nowS, TraceID: trace, SpanID: span}
	if s.v2Ok() {
		if resp, ok := s.v2Next(req); ok {
			s.armed = true
			s.armedNow = nowS
			s.curTrace, s.curSpan = trace, span
			s.recordClientSpan(trace, span, nowS, s.now(), resp.Iter)
			return resp.AppConfig, resp.SysConfig, nil
		}
		// Any v2 failure — stream death or a server-reported error —
		// falls through to v1, whose machinery owns error recovery.
	}
	var resp wire.NextResponse
	err = s.call(ctx, "POST", s.path("next"), req, &resp)
	if s.shouldFailover(err) {
		if ferr := s.failover(ctx); ferr != nil {
			return 0, 0, errors.Join(err, ferr)
		}
		err = s.call(ctx, "POST", s.path("next"), req, &resp)
	}
	if IsCode(err, wire.CodeBadSequence) && !s.armed {
		// The daemon believes an iteration is armed but we never issued
		// one it remembers — a retried Next whose first reply was lost.
		// Settle the phantom bracket with an estimated sample, then ask
		// again.
		if derr := s.reportDone(ctx, 1, true); derr != nil {
			return 0, 0, fmt.Errorf("client: recovering lost Next reply: %w", derr)
		}
		nowS = s.now()
		req.NowS = nowS
		err = s.call(ctx, "POST", s.path("next"), req, &resp)
	}
	if err != nil {
		return 0, 0, err
	}
	s.armed = true
	s.armedNow = nowS
	s.curTrace, s.curSpan = trace, span
	s.recordClientSpan(trace, span, nowS, s.now(), resp.Iter)
	return resp.AppConfig, resp.SysConfig, nil
}

// Done reports the completed iteration: the local clock, the cumulative
// energy reading and the application's accuracy measure. If the daemon
// restarted and lost the bracket, Done re-brackets the iteration
// (Next then Done) so the work — and its energy, reconciled through the
// cumulative counter — is still accounted.
func (s *Session) Done(ctx context.Context, accuracy float64) error {
	if s.closed {
		return fmt.Errorf("client: session %s is closed", s.id)
	}
	err := s.reportDone(ctx, accuracy, false)
	if s.shouldFailover(err) {
		if ferr := s.failover(ctx); ferr != nil {
			return errors.Join(err, ferr)
		}
		err = s.reportDone(ctx, accuracy, false)
	}
	if IsCode(err, wire.CodeBadSequence) {
		// The daemon lost our Next to a restart or migration: its
		// restored state sits at the last completed iteration.
		// Re-bracket: issue Next (we discard the decision — the work
		// already ran) and report again.
		var nresp wire.NextResponse
		nowS := s.now()
		if nerr := s.call(ctx, "POST", s.path("next"), wire.NextRequest{NowS: nowS}, &nresp); nerr != nil {
			return fmt.Errorf("client: re-bracketing after daemon restart: %w", nerr)
		}
		s.armedNow = nowS
		err = s.reportDone(ctx, accuracy, false)
	}
	if err != nil {
		return err
	}
	s.armed = false
	return nil
}

// reportDone sends one Done sample. estimated forces the energy-error
// flag so the daemon treats the sample as a model-based estimate (used
// when settling a phantom bracket whose work we cannot attribute).
func (s *Session) reportDone(ctx context.Context, accuracy float64, estimated bool) error {
	energy, eerr := s.readEnergy()
	req := wire.DoneRequest{
		NowS:      s.now(),
		EnergyJ:   energy,
		EnergyErr: eerr != nil || estimated,
		Accuracy:  accuracy,
		// The settle rides the trace minted when this iteration was armed.
		TraceID: s.curTrace,
		SpanID:  s.curSpan,
	}
	if s.v2Ok() {
		if resp, ok := s.v2Done(req); ok {
			s.settleDone(req, resp)
			return nil
		}
	}
	var resp wire.DoneResponse
	if err := s.call(ctx, "POST", s.path("done"), req, &resp); err != nil {
		return err
	}
	s.settleDone(req, resp)
	return nil
}

// record appends one completed iteration to the failover history. Once
// the window is full it overwrites the oldest ring slot — record runs
// once per governed iteration, and sliding a 4096-entry window down by
// one per call was the client hot loop's largest single cost.
func (s *Session) record(h iterHist) {
	if len(s.hist) < s.histCap {
		s.hist = append(s.hist, h)
		return
	}
	s.hist[s.histHead] = h
	s.histHead = (s.histHead + 1) % len(s.hist)
	s.histBase++
}

// histAt returns the record for absolute iteration i; the caller must
// keep histBase <= i < histBase+len(hist).
func (s *Session) histAt(i int) iterHist {
	return s.hist[(s.histHead+(i-s.histBase))%len(s.hist)]
}

// Info fetches the daemon's introspection view of this session,
// including the governor's learned per-arm estimates.
func (s *Session) Info(ctx context.Context) (wire.SessionInfo, error) {
	var info wire.SessionInfo
	err := s.call(ctx, "GET", s.path(""), nil, &info)
	return info, err
}

// Close tears the session down, releasing its budget grant to the
// broker. Closing twice is an error (the daemon reports the session
// gone).
func (s *Session) Close(ctx context.Context) error {
	if s.closed {
		return nil
	}
	s.v2Teardown(false)
	var resp wire.CloseResponse
	if err := s.call(ctx, "DELETE", s.path(""), nil, &resp); err != nil {
		return err
	}
	s.closed = true
	s.lastDone.SpentJ = resp.SpentJ
	return nil
}

func (s *Session) path(op string) string {
	p := wire.BasePath + "/" + s.id
	if op != "" {
		p += "/" + op
	}
	return p
}

// ---------------------------------------------------------------------
// Fleet failover.

// shouldFailover decides whether an error means "this node no longer
// serves the session" rather than "this call failed".
func (s *Session) shouldFailover(err error) bool {
	if err == nil || len(s.coords) == 0 || s.reg.Key == "" {
		return false
	}
	return errors.Is(err, errExhausted) ||
		IsCode(err, wire.CodeUnknownSession) ||
		IsCode(err, wire.CodeLeaseExpired) ||
		IsCode(err, wire.CodeNotOwner) ||
		// A shed session is gone from this node; re-placing gives the
		// tenant its one legitimate recovery path (fleet policy decides
		// whether the new owner will actually have it back).
		IsCode(err, wire.CodeTenantShed)
}

// place asks the coordinators, in order from the one last known to
// serve, where the session lives. An unreachable coordinator, a standby
// answering not_primary, and a deposed primary answering stale_epoch
// all rotate to the next entry; a placement carrying a fence older than
// the highest one seen is discarded the same way — grants and
// placements from a deposed reign must never be acted on. The per-entry
// call retries through the no_nodes window while a failover is still
// restoring the session on its new owner.
func (s *Session) place(ctx context.Context) (wire.PlacementResponse, error) {
	var lastErr error
	for i := 0; i < len(s.coords); i++ {
		idx := (s.coordIdx + i) % len(s.coords)
		var place wire.PlacementResponse
		err := s.callTo(ctx, s.coords[idx], "GET", wire.ClusterBasePath+"/sessions/"+s.reg.Key, nil, &place)
		if err == nil {
			if place.Fence < s.fence {
				lastErr = &Error{Code: wire.CodeStaleEpoch, Status: http.StatusConflict,
					Message: fmt.Sprintf("placement from fence %d, have seen %d; dropped", place.Fence, s.fence)}
				continue
			}
			if idx != s.coordIdx {
				s.coordIdx = idx
				s.coordFailovers++
			}
			s.fence = place.Fence
			return place, nil
		}
		lastErr = err
		if errors.Is(err, errExhausted) || IsCode(err, wire.CodeNotPrimary) || IsCode(err, wire.CodeStaleEpoch) {
			continue
		}
		return wire.PlacementResponse{}, err
	}
	return wire.PlacementResponse{}, lastErr
}

// failover migrates the client to the session's new owner: re-place via
// the coordinator, re-register there (attaching by key to the restored
// session), then replay from local history whatever completed
// iterations the restored state is missing. After it returns, the new
// node's governor has seen every sample the application produced, in
// order — the same state an uninterrupted run would hold.
//
// The coordinator only expires a dead owner after its lease TTL, so the
// first placements may still point at the corpse (or answer no_nodes
// while the reassignment is in flight); the loop re-places with backoff
// until a live owner takes the session.
func (s *Session) failover(ctx context.Context) error {
	p := s.retry
	delay := p.BaseDelay
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := p.sleep(ctx, delay); err != nil {
				return err
			}
			delay *= 2
			if delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
		err := s.failoverOnce(ctx)
		if err == nil {
			s.failovers++
			return nil
		}
		if !retryableFailover(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("client: failover of %q did not converge after %d rounds: %w",
		s.reg.Key, p.MaxAttempts, lastErr)
}

// retryableFailover reports whether a failover round failed for a
// reason that resolves itself once the coordinator finishes expiring
// the old owner and restoring the session elsewhere.
func retryableFailover(err error) bool {
	return errors.Is(err, errExhausted) ||
		IsCode(err, wire.CodeNoNodes) ||
		IsCode(err, wire.CodeNotOwner) ||
		IsCode(err, wire.CodeLeaseExpired) ||
		IsCode(err, wire.CodeUnknownSession) ||
		// Tenant enforcement on the re-register path: keep backing off —
		// the suspension lifts once the tenant's ladder de-escalates.
		IsCode(err, wire.CodeTenantSuspended) ||
		IsCode(err, wire.CodeTenantShed)
}

func (s *Session) failoverOnce(ctx context.Context) error {
	place, err := s.place(ctx)
	if err != nil {
		return fmt.Errorf("client: failover placement for %q: %w", s.reg.Key, err)
	}
	s.base = strings.TrimRight(place.Addr, "/")
	// The old stream points at the dead node; the new owner assigns a
	// fresh numeric id, so v2 re-dials lazily after re-registration.
	s.v2Teardown(true)
	var resp wire.RegisterResponse
	if err := s.call(ctx, "POST", wire.BasePath, s.reg, &resp); err != nil {
		return fmt.Errorf("client: failover re-register on %s: %w", place.Node, err)
	}
	s.id = resp.SessionID
	s.num = resp.SessionNum

	// Catch up: the restored session sits at resp.IterationsDone; we
	// completed histBase+len(hist). Replay the gap from our own record —
	// exact samples where the window still holds them, estimated
	// observations beyond it.
	completed := s.histBase + len(s.hist)
	for i := resp.IterationsDone; i < completed; i++ {
		var req wire.DoneRequest
		nextNow := s.now()
		if i >= s.histBase {
			h := s.histAt(i)
			nextNow = h.nextNow
			req = wire.DoneRequest{NowS: h.doneNow, EnergyJ: h.energyJ, EnergyErr: h.energyErr, Accuracy: h.accuracy}
		} else {
			energy, eerr := s.readEnergy()
			req = wire.DoneRequest{NowS: s.now(), EnergyJ: energy, EnergyErr: eerr != nil, Accuracy: 1}
			req.EnergyErr = true
		}
		var nresp wire.NextResponse
		if err := s.call(ctx, "POST", s.path("next"), wire.NextRequest{NowS: nextNow}, &nresp); err != nil {
			// bad_sequence: an earlier, interrupted catch-up round already
			// armed this bracket — proceed straight to its Done.
			if !IsCode(err, wire.CodeBadSequence) {
				return fmt.Errorf("client: catch-up next %d: %w", i, err)
			}
		}
		var dresp wire.DoneResponse
		if err := s.call(ctx, "POST", s.path("done"), req, &dresp); err != nil {
			return fmt.Errorf("client: catch-up done %d: %w", i, err)
		}
		s.lastDone = dresp
	}
	s.armed = false
	return nil
}

// IsCode reports whether err is (or wraps) a protocol Error with the
// given wire code.
func IsCode(err error, code string) bool {
	if err == nil {
		return false
	}
	var e *Error
	return errors.As(err, &e) && e.Code == code
}

// call performs one wire call against the session's current node.
func (s *Session) call(ctx context.Context, method, path string, body, out any) error {
	return s.callTo(ctx, s.base, method, path, body, out)
}

// callTo performs one wire call with retry/backoff. Transport failures,
// 5xx replies and the draining code are retried with capped exponential
// backoff; protocol errors return immediately as *Error. Cancelling ctx
// aborts both in-flight requests and the backoff sleeps.
func (s *Session) callTo(ctx context.Context, base, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return err
		}
	}
	p := s.retry
	delay := p.BaseDelay
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := p.sleep(ctx, delay); err != nil {
				return err
			}
			delay *= 2
			if delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if s.timeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, s.timeout)
		}
		status, raw, err := s.do(attemptCtx, base, method, path, payload)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err() // cancelled mid-request: stop, do not retry
			}
			lastErr = err // connection refused mid-restart, reset, timeout, ...
			continue
		}
		if status >= 200 && status < 300 {
			if out == nil {
				return nil
			}
			return json.Unmarshal(raw, out)
		}
		var werr wire.ErrorResponse
		if uerr := json.Unmarshal(raw, &werr); uerr != nil || werr.Code == "" {
			werr = wire.ErrorResponse{Code: wire.CodeBadRequest, Error: strings.TrimSpace(string(raw))}
		}
		perr := &Error{Code: werr.Code, Message: werr.Error, Status: status}
		if werr.Code == wire.CodeTenantSuspended || werr.Code == wire.CodeTenantShed {
			// Enforcement verdicts lift on de-escalation timescales
			// (seconds of clean behavior), not on retry backoff; burning
			// the attempt budget here would just hammer the daemon.
			return perr
		}
		if status >= 500 || werr.Code == wire.CodeDraining || werr.Code == wire.CodeTenantThrottled {
			lastErr = perr // restarting, unwell, or paced by the qos ladder: back off and retry
			continue
		}
		return perr
	}
	return fmt.Errorf("%w: %s %s after %d attempts: %w", errExhausted, method, base+path, p.MaxAttempts, lastErr)
}

// do performs a single HTTP attempt.
func (s *Session) do(ctx context.Context, base, method, path string, payload []byte) (int, []byte, error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := s.httpc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}
