package client_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"jouleguard/internal/client"
	"jouleguard/internal/telemetry"
)

// runTracedWorkload drives one fixed-seed v2 workload and returns the
// daemon's snapshot taken right after the final settle — the full
// event-sourced daemon state (ledger header, session, iteration log) as
// bytes — plus how many spans the daemon recorded.
func runTracedWorkload(t *testing.T, traceEvery int, tracer *telemetry.SpanBuffer) ([]byte, uint64) {
	t.Helper()
	const iters = 40
	srv := newDaemon(t, 20000)
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		srv.CloseV2Streams()
		ts.Close()
	}()

	ctx := context.Background()
	m := newMachine(t)
	sess, err := client.Open(ctx, client.Options{
		BaseURL: ts.URL, Tenant: "golden", App: "radar", Platform: "Tablet",
		Iterations: iters, Factor: 2, Seed: 77,
		TraceEvery: traceEvery, Tracer: tracer,
	}, m.readEnergy, m.readNow)
	if err != nil {
		t.Fatal(err)
	}
	appCfg, sysCfg, err := sess.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		acc := m.step(appCfg, sysCfg, i)
		if i == iters-1 {
			if err := sess.Done(ctx, acc); err != nil {
				t.Fatalf("final done: %v", err)
			}
			break
		}
		appCfg, sysCfg, err = sess.DoneNext(ctx, acc)
		if err != nil {
			t.Fatalf("done+next %d: %v", i, err)
		}
	}
	// Snapshot before Close: the session's whole replay log is the state
	// under comparison.
	var snap bytes.Buffer
	if err := srv.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	spans := srv.Telemetry().Spans.Total()
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	return snap.Bytes(), spans
}

// TestTracedExchangeGoldenState pins the tracing layer's zero-effect
// contract: a v2 exchange with every round traced (trace contexts on
// the wire, spans recorded at each hop) must land the daemon on
// byte-identical state to the same exchange untraced. Tracing observes
// the decision path; it must never perturb it.
func TestTracedExchangeGoldenState(t *testing.T) {
	tracer := telemetry.NewSpanBuffer(64)
	tracer.SetNode("golden-client")
	traced, tracedSpans := runTracedWorkload(t, 1, tracer)
	untraced, untracedSpans := runTracedWorkload(t, -1, nil)

	// Prove the traced run actually traced and the untraced run did not.
	if tracedSpans == 0 {
		t.Fatal("traced run recorded no daemon spans")
	}
	if untracedSpans != 0 {
		t.Fatalf("untraced run recorded %d daemon spans", untracedSpans)
	}
	if tracer.Total() == 0 {
		t.Fatal("traced run recorded no client root spans")
	}
	if !bytes.Equal(traced, untraced) {
		t.Fatalf("traced exchange diverged from untraced golden state:\n traced:   %s\n untraced: %s",
			firstDiffLine(traced, untraced), firstDiffLine(untraced, traced))
	}
}

// firstDiffLine returns the first JSONL line of a that differs from b's
// corresponding line, for a readable failure.
func firstDiffLine(a, b []byte) []byte {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := range al {
		if i >= len(bl) || !bytes.Equal(al[i], bl[i]) {
			return al[i]
		}
	}
	return nil
}
