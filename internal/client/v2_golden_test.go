package client_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"jouleguard/internal/client"
	"jouleguard/internal/wire"
)

// countingHandler wraps a daemon handler and counts per-iteration v1
// JSON calls (next/done), so tests can prove which protocol carried the
// decision traffic.
func countingHandler(inner http.Handler) (http.Handler, *atomic.Int64) {
	var decisionCalls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/next") || strings.HasSuffix(r.URL.Path, "/done") {
			decisionCalls.Add(1)
		}
		inner.ServeHTTP(w, r)
	})
	return h, &decisionCalls
}

// runGoldenWorkload drives one full fixed-seed workload against a fresh
// daemon and returns the daemon's final introspection view plus the
// number of v1 decision calls the wire saw.
func runGoldenWorkload(t *testing.T, disableV2 bool) (wire.SessionInfo, int64) {
	t.Helper()
	const iters = 40
	srv := newDaemon(t, 20000)
	h, decisionCalls := countingHandler(srv.Handler())
	ts := httptest.NewServer(h)
	defer func() {
		// Hijacked v2 streams are invisible to httptest's teardown.
		srv.CloseV2Streams()
		ts.Close()
	}()

	ctx := context.Background()
	m := newMachine(t)
	sess, err := client.Open(ctx, client.Options{
		BaseURL: ts.URL, Tenant: "golden", App: "radar", Platform: "Tablet",
		Iterations: iters, Factor: 2, Seed: 77,
		DisableV2: disableV2,
	}, m.readEnergy, m.readNow)
	if err != nil {
		t.Fatal(err)
	}
	// The steady-state loop every governed application runs: the v2
	// client batches Done+Next into one frame; the v1 client issues two
	// JSON POSTs. Both must produce the same governor trajectory.
	appCfg, sysCfg, err := sess.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		acc := m.step(appCfg, sysCfg, i)
		if i == iters-1 {
			if err := sess.Done(ctx, acc); err != nil {
				t.Fatalf("final done: %v", err)
			}
			break
		}
		appCfg, sysCfg, err = sess.DoneNext(ctx, acc)
		if err != nil {
			t.Fatalf("done+next %d: %v", i, err)
		}
	}
	if st := sess.LastStatus(); !st.Complete || st.IterationsDone != iters {
		t.Fatalf("final status %+v", st)
	}
	info, err := sess.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	return info, decisionCalls.Load()
}

// TestV2ReplayMatchesV1Golden pins the compatibility contract of the v2
// frame protocol: a session replayed over batched binary DoneNext frames
// must land the daemon on EXACTLY the state the v1 JSON protocol
// produces — same iteration count, same spend, same learned per-arm
// estimates, bit for bit. Floats cross the v2 wire as raw IEEE-754 bits
// and cross v1 as shortest-round-trip JSON, so any divergence here means
// one of the codecs is lossy.
func TestV2ReplayMatchesV1Golden(t *testing.T) {
	v1Info, v1Calls := runGoldenWorkload(t, true)
	v2Info, v2Calls := runGoldenWorkload(t, false)

	// Prove the two runs actually took different transports: v1 pays two
	// JSON decision calls per iteration; v2 moves them onto the stream.
	if v1Calls == 0 {
		t.Fatalf("v1 run made no JSON decision calls")
	}
	if v2Calls != 0 {
		t.Fatalf("v2 run leaked %d decision calls onto the v1 JSON wire", v2Calls)
	}

	v1JSON, err := json.Marshal(v1Info)
	if err != nil {
		t.Fatal(err)
	}
	v2JSON, err := json.Marshal(v2Info)
	if err != nil {
		t.Fatal(err)
	}
	if string(v1JSON) != string(v2JSON) {
		t.Fatalf("v2 session state diverged from v1 golden:\n v1: %s\n v2: %s", v1JSON, v2JSON)
	}
}
