package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"time"

	"jouleguard/internal/wire"
)

// The client side of the v2 hot path. After registering over v1, the
// session upgrades one HTTP request on the daemon into a persistent
// binary-frame stream and moves its per-iteration Next/Done traffic
// there; DoneNext batches the settle of the previous iteration with the
// fetch of the upcoming decision into a single round trip.
//
// v2 is strictly an optimization with a hard fallback rule: any v2
// failure — upgrade refused, transport error, or an error frame —
// executes the v1 JSON/HTTP path for that call. All of the client's
// resilience machinery (retry/backoff, re-bracketing after daemon
// restarts, fleet failover) lives on the v1 path, so v2 never needs to
// reimplement it: the stream only ever carries calls that succeed
// outright.

// v2Stream is one upgraded connection. The Session owns it exclusively
// (Sessions are single-loop by contract), so no locking.
type v2Stream struct {
	conn net.Conn
	enc  *wire.Encoder
	dec  *wire.Decoder
	// traced records whether the daemon echoed the FlagTraced capability
	// at upgrade; without it the session strips trace contexts from its
	// frames so an old peer never sees an extended payload.
	traced bool
}

func (v *v2Stream) close() {
	wire.PutEncoder(v.enc)
	wire.PutDecoder(v.dec)
	v.conn.Close()
}

// v2DialTimeout bounds the upgrade handshake when Options.RequestTimeout
// is unset.
const v2DialTimeout = 5 * time.Second

// v2Ok reports whether the session can speak v2 right now, dialing the
// stream on first use. A failed dial turns v2 off for this node; fleet
// failover re-enables it against the session's new owner.
func (s *Session) v2Ok() bool {
	if s.v2Disabled || s.v2Off || s.num == 0 {
		return false
	}
	if s.v2 != nil {
		return true
	}
	v, err := dialV2(s.base, s.timeout)
	if err != nil {
		s.v2Off = true
		return false
	}
	s.v2 = v
	return true
}

// v2Teardown drops the stream (transport error or node switch). reDial
// keeps v2 eligible — the next call dials fresh — while false pins the
// session to v1 until failover moves it.
func (s *Session) v2Teardown(reDial bool) {
	if s.v2 != nil {
		s.v2.close()
		s.v2 = nil
	}
	s.v2Off = !reDial
}

// dialV2 opens a TCP connection to the daemon and upgrades it to the
// frame protocol with a plain HTTP/1.1 Upgrade handshake.
func dialV2(base string, timeout time.Duration) (*v2Stream, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, err
	}
	if u.Scheme != "http" {
		return nil, fmt.Errorf("client: v2 stream requires http base URL, have %q", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	if timeout <= 0 {
		timeout = v2DialTimeout
	}
	conn, err := net.DialTimeout("tcp", host, timeout)
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	req := "POST " + wire.V2Path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: " + wire.V2Proto + "\r\n" +
		"Connection: Upgrade\r\n" +
		wire.V2TraceHeader + ": 1\r\n" +
		"Content-Length: 0\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 4096)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols || resp.Header.Get("Upgrade") != wire.V2Proto {
		conn.Close()
		return nil, fmt.Errorf("client: daemon refused v2 upgrade (HTTP %d)", resp.StatusCode)
	}
	_ = conn.SetDeadline(time.Time{})
	// The decoder adopts br: the daemon's first frames may already sit in
	// its buffer behind the 101 response.
	return &v2Stream{
		conn: conn, enc: wire.GetEncoder(conn), dec: wire.GetDecoder(br),
		// A daemon that understands FlagTraced echoes the capability
		// header; anything else gets strictly base-length frames.
		traced: resp.Header.Get(wire.V2TraceHeader) == "1",
	}, nil
}

// v2Round sends one frame and reads the single response frame, under a
// per-attempt deadline when one is configured. A transport failure
// tears the stream down (reply-less writes are unrecoverable framing
// loss) and reports !ok so the caller runs the v1 path.
func (s *Session) v2Round(send func(enc *wire.Encoder) error) (wire.Hdr, []byte, bool) {
	if s.timeout > 0 {
		_ = s.v2.conn.SetDeadline(time.Now().Add(s.timeout))
	}
	if err := send(s.v2.enc); err != nil {
		s.v2Teardown(true)
		return wire.Hdr{}, nil, false
	}
	if err := s.v2.enc.Flush(); err != nil {
		s.v2Teardown(true)
		return wire.Hdr{}, nil, false
	}
	h, p, err := s.v2.dec.ReadFrame()
	if err != nil {
		s.v2Teardown(true)
		return wire.Hdr{}, nil, false
	}
	if s.timeout > 0 {
		_ = s.v2.conn.SetDeadline(time.Time{})
	}
	return h, p, true
}

// v2Next runs one Next over the stream. ok=false means "use v1" — for
// any reason, including server-reported errors, so the v1 path's error
// handling (re-bracketing, failover) stays the single source of truth.
func (s *Session) v2Next(req wire.NextRequest) (wire.NextResponse, bool) {
	if !s.v2.traced {
		req.TraceID, req.SpanID = 0, 0
	}
	h, p, ok := s.v2Round(func(enc *wire.Encoder) error {
		return enc.Next(s.num, &req)
	})
	if !ok || h.Type != wire.TNextResp {
		return wire.NextResponse{}, false
	}
	resp, err := wire.ParseNextResp(h, p)
	if err != nil {
		s.v2Teardown(true)
		return wire.NextResponse{}, false
	}
	return resp, true
}

// v2Done runs one Done over the stream; same fallback contract.
func (s *Session) v2Done(req wire.DoneRequest) (wire.DoneResponse, bool) {
	if !s.v2.traced {
		req.TraceID, req.SpanID = 0, 0
	}
	h, p, ok := s.v2Round(func(enc *wire.Encoder) error {
		return enc.Done(s.num, &req)
	})
	if !ok || h.Type != wire.TDoneResp {
		return wire.DoneResponse{}, false
	}
	resp, err := wire.ParseDoneResp(h, p)
	if err != nil {
		s.v2Teardown(true)
		return wire.DoneResponse{}, false
	}
	return resp, true
}

// DoneNext settles the completed iteration and fetches the next
// decision in one round trip — the steady-state batch. Semantically it
// is exactly Done(accuracy) followed by Next(), and over v1 (or on any
// v2 error) that is literally what runs; over v2 both ride one frame.
// The final iteration of a workload still ends with a plain Done.
func (s *Session) DoneNext(ctx context.Context, accuracy float64) (appCfg, sysCfg int, err error) {
	if s.closed {
		return 0, 0, fmt.Errorf("client: session %s is closed", s.id)
	}
	if s.armed && s.v2Ok() {
		energy, eerr := s.readEnergy()
		// The batched frame carries one trace context for the pair: a
		// sampled DoneNext traces both the settle of iteration i and the
		// decision for i+1.
		trace, span := s.mintTrace()
		if !s.v2.traced {
			trace, span = 0, 0
		}
		doneReq := wire.DoneRequest{
			NowS:      s.now(),
			EnergyJ:   energy,
			EnergyErr: eerr != nil,
			Accuracy:  accuracy,
			TraceID:   trace,
			SpanID:    span,
		}
		nextNow := s.now()
		h, p, ok := s.v2Round(func(enc *wire.Encoder) error {
			nextReq := wire.NextRequest{NowS: nextNow}
			return enc.DoneNext(s.num, &doneReq, &nextReq)
		})
		if ok {
			switch h.Type {
			case wire.TDoneNextResp:
				dresp, nresp, perr := wire.ParseDoneNextResp(h, p)
				if perr != nil {
					s.v2Teardown(true)
					break
				}
				s.settleDone(doneReq, dresp)
				s.armed = true
				s.armedNow = nextNow
				s.curTrace, s.curSpan = trace, span
				s.recordClientSpan(trace, span, doneReq.NowS, s.now(), nresp.Iter)
				return nresp.AppConfig, nresp.SysConfig, nil
			case wire.TDoneResp:
				// Done settled but Next could not be served (workload
				// complete, draining, ...): bank the settle, then let the
				// v1 Next report the authoritative error.
				dresp, perr := wire.ParseDoneResp(h, p)
				if perr != nil {
					s.v2Teardown(true)
					break
				}
				s.settleDone(doneReq, dresp)
				s.armed = false
				return s.Next(ctx)
			}
			// TErr (done itself failed) or an unexpected type: fall through
			// to the full v1 Done+Next below.
		}
	}
	if err := s.Done(ctx, accuracy); err != nil {
		return 0, 0, err
	}
	return s.Next(ctx)
}

// settleDone applies a successful Done settlement to the session's
// ledger mirror and failover history (shared by the v1 and v2 paths).
func (s *Session) settleDone(req wire.DoneRequest, resp wire.DoneResponse) {
	s.lastDone = resp
	s.record(iterHist{
		nextNow: s.armedNow, doneNow: req.NowS,
		energyJ: req.EnergyJ, energyErr: req.EnergyErr, accuracy: req.Accuracy,
	})
}
