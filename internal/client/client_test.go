package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jouleguard"
	"jouleguard/internal/client"
	"jouleguard/internal/server"
	"jouleguard/internal/wire"
)

// machine simulates the governed application's clock and meter.
type machine struct {
	tb      *jouleguard.Testbed
	clockS  float64
	energyJ float64
}

func newMachine(t *testing.T) *machine {
	t.Helper()
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	return &machine{tb: tb}
}

func (m *machine) step(appCfg, sysCfg, iter int) float64 {
	work, acc := m.tb.App.Step(appCfg, iter)
	dur := work / m.tb.Platform.Rate(sysCfg, m.tb.Profile)
	m.clockS += dur
	m.energyJ += m.tb.Platform.Power(sysCfg, m.tb.Profile) * dur
	return acc
}

func (m *machine) readEnergy() (float64, error) { return m.energyJ, nil }
func (m *machine) readNow() float64             { return m.clockS }

func newDaemon(t *testing.T, globalJ float64) *server.Server {
	t.Helper()
	srv, err := server.New(server.Config{GlobalBudgetJ: globalJ, SweepInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}

// TestClientSessionLoop drives a whole workload through the client
// library against a real daemon over HTTP.
func TestClientSessionLoop(t *testing.T) {
	ctx := context.Background()
	srv := newDaemon(t, 10000)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	m := newMachine(t)
	sess, err := client.Open(ctx, client.Options{
		BaseURL: ts.URL, Tenant: "t1", App: "radar", Platform: "Tablet",
		Iterations: 30, Factor: 2, Seed: 3,
	}, m.readEnergy, m.readNow)
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID() == "" || sess.GrantJ() <= 0 {
		t.Fatalf("session %q grant %.1f", sess.ID(), sess.GrantJ())
	}
	for i := 0; i < 30; i++ {
		appCfg, sysCfg, err := sess.Next(ctx)
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		if err := sess.Done(ctx, m.step(appCfg, sysCfg, i)); err != nil {
			t.Fatalf("done %d: %v", i, err)
		}
	}
	if st := sess.LastStatus(); !st.Complete || st.IterationsDone != 30 {
		t.Fatalf("final status %+v", st)
	}
	info, err := sess.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "complete" || len(info.Estimates) == 0 {
		t.Fatalf("info %+v", info)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err != nil { // idempotent client-side
		t.Fatalf("second close: %v", err)
	}
}

// TestClientRetriesTransientFailures pins the backoff layer: 5xx and
// draining replies are retried with exponential delays; protocol errors
// are not retried.
func TestClientRetriesTransientFailures(t *testing.T) {
	ctx := context.Background()
	srv := newDaemon(t, 10000)
	inner := srv.Handler()
	var fail atomic.Int32 // fail the next N requests with 503 draining
	outer := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() > 0 {
			fail.Add(-1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"code":"draining","error":"restarting"}`))
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(outer)
	defer ts.Close()

	var mu sync.Mutex
	var delays []time.Duration
	retry := client.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Sleep: func(d time.Duration) {
			mu.Lock()
			delays = append(delays, d)
			mu.Unlock()
		},
	}

	m := newMachine(t)
	fail.Store(2) // registration itself must survive two outages
	sess, err := client.Open(ctx, client.Options{
		BaseURL: ts.URL, App: "radar", Platform: "Tablet",
		Iterations: 5, BudgetJ: 10, Retry: retry,
	}, m.readEnergy, m.readNow)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(delays) != 2 || delays[0] != time.Millisecond || delays[1] != 2*time.Millisecond {
		t.Fatalf("backoff delays %v", delays)
	}
	mu.Unlock()

	// Exhausting the attempts surfaces the last transient error.
	fail.Store(100)
	if _, _, err := sess.Next(ctx); err == nil || !strings.Contains(err.Error(), "after 5 attempts") {
		t.Fatalf("expected retries-exhausted error, got %v", err)
	}
	fail.Store(0)

	// Protocol errors do not retry: closing twice server-side is Gone
	// immediately (one request, no sleeps).
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	before := len(delays)
	mu.Unlock()
	_, err = client.Open(ctx, client.Options{
		BaseURL: ts.URL, App: "radar", Platform: "Tablet",
		Iterations: 5, BudgetJ: 1e9, Retry: retry,
	}, m.readEnergy, m.readNow)
	if !client.IsCode(err, wire.CodeBudgetExhausted) {
		t.Fatalf("over-budget registration: got %v, want budget-exhausted", err)
	}
	mu.Lock()
	if len(delays) != before {
		t.Fatalf("protocol error was retried: %d sleeps added", len(delays)-before)
	}
	mu.Unlock()
}

// TestClientRidesThroughRestart pins the recovery protocol: the daemon
// dies with an iteration armed, a restored daemon comes back at the last
// completed iteration, and the client's Done re-brackets transparently.
func TestClientRidesThroughRestart(t *testing.T) {
	ctx := context.Background()
	srv1 := newDaemon(t, 10000)
	var handler atomic.Value
	handler.Store(srv1.Handler())
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer ts.Close()

	m := newMachine(t)
	sess, err := client.Open(ctx, client.Options{
		BaseURL: ts.URL, App: "radar", Platform: "Tablet",
		Iterations: 20, Factor: 2, Seed: 5,
		Retry: client.RetryPolicy{BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}},
	}, m.readEnergy, m.readNow)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		appCfg, sysCfg, err := sess.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Done(ctx, m.step(appCfg, sysCfg, i)); err != nil {
			t.Fatal(err)
		}
	}

	// Arm iteration 10, then kill the daemon before Done reaches it.
	appCfg, sysCfg, err := sess.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	acc := m.step(appCfg, sysCfg, 10)

	var snap strings.Builder
	if err := srv1.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	srv2 := newDaemon(t, 1)
	if err := srv2.Restore(strings.NewReader(snap.String())); err != nil {
		t.Fatal(err)
	}
	handler.Store(srv2.Handler())

	// Done hits the restored daemon, which sits at iteration 10 with no
	// armed bracket: the client re-brackets and the work is accounted.
	if err := sess.Done(ctx, acc); err != nil {
		t.Fatalf("done across restart: %v", err)
	}
	if st := sess.LastStatus(); st.IterationsDone != 11 {
		t.Fatalf("iterations after recovery: %+v", st)
	}

	// The rest of the workload runs to completion on the new daemon.
	for i := 11; i < 20; i++ {
		appCfg, sysCfg, err := sess.Next(ctx)
		if err != nil {
			t.Fatalf("next %d after restart: %v", i, err)
		}
		if err := sess.Done(ctx, m.step(appCfg, sysCfg, i)); err != nil {
			t.Fatalf("done %d after restart: %v", i, err)
		}
	}
	if st := sess.LastStatus(); !st.Complete {
		t.Fatalf("workload incomplete after restart: %+v", st)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if wire.Version != "v1" {
		t.Fatal("wire version drifted")
	}
}

// TestClientContextCancelsBackoff pins the context contract: a caller
// cancelling mid-retry gets control back immediately — the backoff
// sleep and any in-flight request are abandoned, not ridden out.
func TestClientContextCancelsBackoff(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"code":"draining","error":"down"}`))
	}))
	defer down.Close()

	m := newMachine(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := client.Open(ctx, client.Options{
		BaseURL: down.URL, App: "radar", Platform: "Tablet",
		Iterations: 5, Factor: 2,
		// Delays so long that only cancellation can end the call quickly.
		Retry: client.RetryPolicy{MaxAttempts: 100, BaseDelay: 10 * time.Second, MaxDelay: time.Minute},
	}, m.readEnergy, m.readNow)
	if err == nil {
		t.Fatal("open against a permanently draining daemon succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("cancellation took %v — backoff was not interrupted", waited)
	}
}
