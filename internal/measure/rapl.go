package measure

import (
	"time"

	"jouleguard/internal/sensors"
)

// RAPLMeter is the real-hardware backend: the hardened powercap reader
// (wrap-around-safe multi-zone sampling, transient-read retry, loud
// failure when the zone set changes) fed monotonic timestamps. Go's
// time.Since uses the monotonic clock reading embedded in the anchor,
// so NTP steps cannot tear a sampling window.
type RAPLMeter struct {
	rd    *sensors.LinuxRAPLReader
	start time.Time
}

// NewRAPLMeter opens the powercap interface under root ("" = the live
// /sys/class/powercap). It fails cleanly when the interface is absent —
// callers fall back to the simulator.
func NewRAPLMeter(root string, fixedW float64) (*RAPLMeter, error) {
	rd, err := sensors.NewLinuxRAPLReader(root, fixedW)
	if err != nil {
		return nil, err
	}
	return &RAPLMeter{rd: rd, start: time.Now()}, nil
}

// Name implements Meter.
func (m *RAPLMeter) Name() string { return "rapl" }

// Zones returns the RAPL package-domain count (for startup logging).
func (m *RAPLMeter) Zones() int { return m.rd.Zones() }

// ReadJoules implements Meter.
func (m *RAPLMeter) ReadJoules() (float64, error) {
	return m.rd.ReadEnergyAt(time.Since(m.start).Seconds())
}

// OpenBackend resolves a -meter flag value to a constructed meter.
// "rapl" tries the powercap interface first and falls back to the
// simulator when it is unavailable (non-Linux, containers, unprivileged
// hosts) — fellBack reports that so the daemon can log it and /healthz
// can show the backend that actually runs. "sim" is the simulator
// directly. Anything else is nil (client-supplied readings).
func OpenBackend(name, raplRoot string, fixedW float64, sim SimConfig) (m Meter, fellBack bool, err error) {
	switch name {
	case "rapl":
		r, rerr := NewRAPLMeter(raplRoot, fixedW)
		if rerr != nil {
			return NewSimMeter(sim), true, rerr
		}
		return r, false, nil
	case "sim":
		return NewSimMeter(sim), false, nil
	default:
		return nil, false, nil
	}
}
