// Package measure is JouleGuard's energy-measurement subsystem: it
// turns raw cumulative-energy counters into trusted, budget-grade
// joules. The paper reads RAPL MSRs and treats measured energy as
// ground truth (Sec. 4.2); production counters do not deserve that
// trust — powercap reads fail transiently, counters wrap, wedge and
// spike — so this package puts a calibration layer and a correctness
// gate between the counter and the budget ledger.
//
// The pipeline has three stages:
//
//  1. A Meter backend produces cumulative joules: RAPLMeter over the
//     hardened powercap reader on real Linux hosts, SimMeter over the
//     internal/sensors models everywhere else (CI included).
//  2. Calibrate estimates the idle baseline with repeated trials and a
//     CV-targeted early stop; the Service subtracts that baseline so
//     sessions are charged for the power their work added, not for the
//     host existing.
//  3. The Service samples the meter on a hot loop with monotonic
//     timestamps, rules on every per-sample power through the
//     internal/guard gate (spike / stuck / negative-delta verdicts
//     with quarantine-then-recover), and splits the trusted residual
//     energy across open attribution windows — one per in-flight
//     session iteration — by weight and host CPU-time share.
//
// An implausible sample is rejected, counted, and never debited: the
// gate substitutes its model estimate, so a 3x counter spike costs the
// tenants nothing and a frozen counter cannot make energy free.
package measure

import "errors"

// Meter is one energy-measurement backend: a monotone cumulative-joule
// counter starting near zero at construction. Implementations need not
// be safe for concurrent use — the Service serializes all reads on its
// sampling loop (calibration runs before the loop starts).
type Meter interface {
	// Name identifies the backend ("rapl", "sim") for telemetry and
	// /healthz.
	Name() string
	// ReadJoules returns cumulative energy since construction. An error
	// means this read is lost (transient counter failure); the caller
	// decides whether the stream is dead.
	ReadJoules() (float64, error)
}

// ErrReadingDropped is the error a simulated backend returns when an
// injected fault drops a read — the file-level analogue is a failed
// sysfs read.
var ErrReadingDropped = errors.New("measure: energy reading dropped")
