package measure

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

// fakeClock is a hand-cranked time source shared by meters, calibration
// and the service so tests are deterministic.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func (c *fakeClock) sleep(d time.Duration)   { c.advance(d) }

func simForCal(clk *fakeClock, idleW, noiseW float64, seed int64) *SimMeter {
	return NewSimMeter(SimConfig{IdleW: idleW, NoiseW: noiseW, Seed: seed, Now: clk.now})
}

func calCfg(clk *fakeClock) CalibrationConfig {
	return CalibrationConfig{
		TrialDur: 100 * time.Millisecond,
		Sleep:    clk.sleep,
		Now:      clk.now,
	}
}

func TestCalibrateEarlyStop(t *testing.T) {
	clk := newFakeClock()
	m := simForCal(clk, 2.0, 0.02, 7) // 1% relative noise: stable fast
	cal, err := Calibrate(m, calCfg(clk))
	if err != nil {
		t.Fatal(err)
	}
	if !cal.EarlyStopped {
		t.Fatalf("low-noise calibration should early-stop: %+v", cal)
	}
	if cal.Trials != 3 { // default MinTrials
		t.Fatalf("trials = %d, want early stop at MinTrials=3", cal.Trials)
	}
	if math.Abs(cal.BaselineW-2.0) > 0.1 {
		t.Fatalf("baseline = %v, want ~2.0", cal.BaselineW)
	}
	if cal.CV > 0.05 {
		t.Fatalf("CV = %v, want <= 0.05 at early stop", cal.CV)
	}
	if cal.Backend != "sim" {
		t.Fatalf("backend = %q", cal.Backend)
	}
}

func TestCalibrateNoisyRunsToMaxTrials(t *testing.T) {
	clk := newFakeClock()
	m := simForCal(clk, 2.0, 1.5, 3) // 75% relative noise: never stable
	cal, err := Calibrate(m, calCfg(clk))
	if err != nil {
		t.Fatal(err)
	}
	if cal.EarlyStopped {
		t.Fatalf("noisy calibration must not early-stop: %+v", cal)
	}
	if cal.Trials != 8 { // default MaxTrials
		t.Fatalf("trials = %d, want MaxTrials=8", cal.Trials)
	}
}

// Golden: under a seeded noise model, two calibrations are trial-for-
// trial identical — the CV early-stop is a pure function of the seed.
func TestCalibrateDeterminism(t *testing.T) {
	run := func() Calibration {
		clk := newFakeClock()
		m := simForCal(clk, 3.0, 0.4, 99)
		cal, err := Calibrate(m, calCfg(clk))
		if err != nil {
			t.Fatal(err)
		}
		return cal
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded calibration not deterministic:\n a=%+v\n b=%+v", a, b)
	}
	if len(a.TrialW) != a.Trials {
		t.Fatalf("TrialW length %d != Trials %d", len(a.TrialW), a.Trials)
	}
}

type errMeter struct{}

func (errMeter) Name() string                 { return "err" }
func (errMeter) ReadJoules() (float64, error) { return 0, errors.New("dead counter") }

func TestCalibrateReadErrorIsTerminal(t *testing.T) {
	clk := newFakeClock()
	if _, err := Calibrate(errMeter{}, calCfg(clk)); err == nil {
		t.Fatal("calibration over a dead counter must fail")
	}
}
