package measure

import (
	"math"
	"testing"
	"time"

	"jouleguard/internal/faults"
	"jouleguard/internal/guard"
)

// rig is a deterministic pipeline: fake clock, sim meter, calibrated
// service. step() is one 10ms sampling interval carrying the given work
// deposit.
type rig struct {
	clk *fakeClock
	m   *SimMeter
	svc *Service
}

func newRig(t *testing.T, gateCfg guard.Config) *rig {
	t.Helper()
	clk := newFakeClock()
	m := NewSimMeter(SimConfig{IdleW: 2, NoiseW: 1e-6, Seed: 11, Now: clk.now})
	cal, err := Calibrate(m, calCfg(clk))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.BaselineW-2) > 0.01 {
		t.Fatalf("baseline = %v, want ~2", cal.BaselineW)
	}
	svc := NewService(ServiceConfig{
		Meter:    m,
		Gate:     gateCfg,
		Baseline: cal,
		Now:      clk.now,
	})
	svc.Sample() // prime the anchor
	return &rig{clk: clk, m: m, svc: svc}
}

func (r *rig) step(workJ float64) {
	r.clk.advance(10 * time.Millisecond)
	if workJ > 0 {
		r.m.Deposit(workJ)
	}
	r.svc.Sample()
}

func TestServiceAttributionSplit(t *testing.T) {
	r := newRig(t, guard.Config{ModelPower: 30, MaxPower: 1000})
	r.svc.OpenWindow("a", 2)
	r.svc.OpenWindow("b", 1)
	for i := 0; i < 100; i++ {
		r.step(0.3) // 30 W of work above the 2 W idle
	}
	aJ, ok := r.svc.CloseWindow("a")
	if !ok {
		t.Fatal("window a vanished")
	}
	bJ, ok := r.svc.CloseWindow("b")
	if !ok {
		t.Fatal("window b vanished")
	}
	// 30 J of work over 1 s; baseline subtraction strips the idle share.
	total := aJ + bJ
	if math.Abs(total-30) > 1.5 {
		t.Fatalf("attributed total = %v, want ~30", total)
	}
	if ratio := aJ / bJ; math.Abs(ratio-2) > 0.05 {
		t.Fatalf("split a/b = %v, want weight ratio 2", ratio)
	}
	st := r.svc.Status()
	if st.GateRejected != 0 {
		t.Fatalf("clean run rejected %d samples", st.GateRejected)
	}
	if math.Abs(st.AttributedJ-total) > 1e-9 {
		t.Fatalf("ledger attributed %v != window sum %v", st.AttributedJ, total)
	}
	if st.OpenWindows != 0 {
		t.Fatalf("windows left open: %d", st.OpenWindows)
	}
}

// The core guarantee: an injected spike is rejected, counted, and never
// debited — the window is charged the model estimate for the poisoned
// intervals, not the spike.
func TestServiceSpikeRejectedNeverDebited(t *testing.T) {
	r := newRig(t, guard.Config{ModelPower: 32, MaxPower: 500})
	r.svc.OpenWindow("s", 1)
	trueWork := 0.0
	for i := 0; i < 30; i++ { // warm the gate window
		r.step(0.3)
		trueWork += 0.3
	}
	// One spiked read: cumulative triples for a single sample.
	r.m.SetFault(faults.NewSpike(1.0, 3, 0, 5))
	r.step(0.3)
	trueWork += 0.3
	r.m.SetFault(nil)
	for i := 0; i < 30; i++ {
		r.step(0.3)
		trueWork += 0.3
	}
	got, _ := r.svc.CloseWindow("s")
	st := r.svc.Status()
	if st.GateRejected < 2 { // the spike, then the negative-delta echo
		t.Fatalf("rejected = %d, want >= 2 (spike + negative echo)", st.GateRejected)
	}
	// The spike inflated the raw stream by ~2x the cumulative total; the
	// debited energy must stay at the true scale.
	if got > trueWork*1.15 {
		t.Fatalf("debited %v J for %v J of true work — spike was billed", got, trueWork)
	}
	if got < trueWork*0.8 {
		t.Fatalf("debited %v J for %v J of true work — over-rejected", got, trueWork)
	}
	if st.Quarantined {
		t.Fatal("two isolated rejects must not quarantine")
	}
}

// A frozen counter (delta exactly zero while the host idles above its
// calibrated baseline) is caught by the low-power floor, quarantined
// after the configured streak, and recovers on the first live sample.
func TestServiceStuckCounterQuarantineThenRecover(t *testing.T) {
	r := newRig(t, guard.Config{ModelPower: 32, MaxPower: 10000})
	r.svc.OpenWindow("q", 1)
	for i := 0; i < 20; i++ {
		r.step(0.3)
	}
	// Freeze the counter: every read repeats the last value.
	r.m.SetFault(faults.NewStuck(1, 1))
	for i := 0; i < 10; i++ {
		r.step(0.3) // work continues, the counter does not
	}
	st := r.svc.Status()
	if !st.Quarantined || st.Quarantines != 1 {
		t.Fatalf("after 10 frozen samples: quarantined=%v count=%d, want true/1", st.Quarantined, st.Quarantines)
	}
	if st.LowPowerRejects == 0 {
		t.Fatal("frozen counter should trip the low-power floor")
	}
	// Thaw. The catch-up delta is implausibly large (rejected), then the
	// stream is live again and quarantine lifts.
	r.m.SetFault(nil)
	for i := 0; i < 5; i++ {
		r.step(0.3)
	}
	st = r.svc.Status()
	if st.Quarantined {
		t.Fatal("quarantine must lift once samples are accepted again")
	}
	// The frozen stretch was debited at the estimate — energy never
	// became free.
	got, _ := r.svc.CloseWindow("q")
	if got < 0.3*30 { // 35 work steps happened; demand at least ~30's worth
		t.Fatalf("frozen stretch under-debited: %v J", got)
	}
}

func TestServiceReadErrorsReprime(t *testing.T) {
	r := newRig(t, guard.Config{ModelPower: 32})
	for i := 0; i < 10; i++ {
		r.step(0.3)
	}
	r.m.SetFault(faults.NewDropout(1.0, 9))
	r.step(0.3)
	r.step(0.3)
	r.m.SetFault(nil)
	r.step(0.3)
	st := r.svc.Status()
	if st.ReadErrors != 2 {
		t.Fatalf("read errors = %d, want 2", st.ReadErrors)
	}
	// Trusted ledger kept integrating (estimates) through the outage.
	if st.TrustedJ <= 0 {
		t.Fatal("trusted ledger empty after outage")
	}
}

func TestServiceWindowLifecycle(t *testing.T) {
	r := newRig(t, guard.Config{ModelPower: 32})
	if _, ok := r.svc.CloseWindow("ghost"); ok {
		t.Fatal("closing a never-opened window must report !ok")
	}
	r.svc.OpenWindow("w", 0) // non-positive weight defaults to 1
	r.step(0.3)
	j, ok := r.svc.CloseWindow("w")
	if !ok || j <= 0 {
		t.Fatalf("window close: %v %v", j, ok)
	}
	if _, ok := r.svc.CloseWindow("w"); ok {
		t.Fatal("double close must report !ok")
	}
	// With no window open the residual is orphaned, not billed.
	r.step(0.3)
	if st := r.svc.Status(); st.UnattributedJ <= 0 {
		t.Fatal("orphaned energy not counted")
	}
}

// End to end over the file-based pipeline: the real powercap reader on
// a fault-fabric tree, with injected jitter, wraps and a stuck stretch
// — the gate catches all of it and the trusted ledger stays at true
// scale.
func TestServiceOverFakePowercap(t *testing.T) {
	dir := t.TempDir()
	// 1 J wrap range: wraps happen every few samples by construction.
	tree, err := faults.NewFakePowercap(dir, 2, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	meter, err := NewRAPLMeter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	svc := NewService(ServiceConfig{
		Meter:     meter,
		Gate:      guard.Config{ModelPower: 20, MaxPower: 45},
		MinPowerW: 1,
		Now:       clk.now,
	})
	svc.Sample()
	step := func(j float64) {
		clk.advance(10 * time.Millisecond)
		if err := tree.Advance(j); err != nil {
			t.Fatal(err)
		}
		svc.Sample()
	}
	// Real workloads jitter sample to sample; a bit-identical power
	// stream would (correctly) look like a wedged sensor to the gate.
	work := func(i int) float64 { return 0.19 + 0.005*float64(i%5) }
	svc.OpenWindow("w", 1)
	for i := 0; i < 40; i++ { // clean warmup at ~20 W, wrapping constantly
		step(work(i))
	}
	if st := svc.Status(); st.GateRejected != 0 {
		t.Fatalf("wraps alone caused %d rejections", st.GateRejected)
	}
	// Jitter: +0.35 J spikes on the written counter.
	tree.SetFault(faults.NewSpike(0.5, 1, 350000, 13))
	for i := 0; i < 20; i++ {
		step(work(i))
	}
	tree.SetFault(nil)
	jittered := svc.Status()
	if jittered.GateRejected == 0 {
		t.Fatal("injected jitter never rejected")
	}
	// Stuck: writes dropped, counter frozen below the floor.
	tree.SetFault(faults.NewDropout(1.0, 17))
	for i := 0; i < 8; i++ {
		step(work(i))
	}
	tree.SetFault(nil)
	st := svc.Status()
	if st.LowPowerRejects == 0 {
		t.Fatal("frozen powercap counter not caught")
	}
	if st.Quarantines == 0 {
		t.Fatal("frozen stretch should have quarantined the meter")
	}
	got, _ := svc.CloseWindow("w")
	trueJ := tree.TrueJoules()
	if got > trueJ*1.2 {
		t.Fatalf("debited %v J of %v J true — injected faults were billed", got, trueJ)
	}
	if got < trueJ*0.6 {
		t.Fatalf("debited %v J of %v J true — pipeline lost real energy", got, trueJ)
	}
}
