package measure

import (
	"errors"
	"math"
	"testing"

	"jouleguard/internal/faults"
)

func TestSimMeterDepositAndIdle(t *testing.T) {
	clk := newFakeClock()
	m := NewSimMeter(SimConfig{IdleW: 2, NoiseW: 1e-9, Now: clk.now})
	if _, err := m.ReadJoules(); err != nil { // anchors the clock
		t.Fatal(err)
	}
	clk.advance(1e9) // 1 second
	m.Deposit(10)
	j, err := m.ReadJoules()
	if err != nil {
		t.Fatal(err)
	}
	// 10 J of work + ~2 J of idle over 1 s.
	if math.Abs(j-12) > 0.01 {
		t.Fatalf("cumulative = %v, want ~12", j)
	}
	if math.Abs(m.TrueJoules()-j) > 0.01 {
		t.Fatalf("TrueJoules %v != reading %v on a fault-free meter", m.TrueJoules(), j)
	}
}

// The sim path runs through a 32-bit RAPL register (65536 J range), so
// counter wrap-around is exercised on every big run.
func TestSimMeterCounterWrap(t *testing.T) {
	clk := newFakeClock()
	m := NewSimMeter(SimConfig{IdleW: 1, NoiseW: 1e-9, Now: clk.now})
	if _, err := m.ReadJoules(); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i := 0; i < 5; i++ { // 5 x 30000 J crosses the 65536 J wrap twice
		m.Deposit(30000)
		total += 30000
		j, err := m.ReadJoules()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(j-total) > 1e-3 {
			t.Fatalf("after %d deposits: cumulative = %v, want %v", i+1, j, total)
		}
	}
}

func TestSimMeterFaults(t *testing.T) {
	clk := newFakeClock()
	m := NewSimMeter(SimConfig{IdleW: 1, NoiseW: 1e-9, Now: clk.now})
	m.Deposit(100)
	if _, err := m.ReadJoules(); err != nil {
		t.Fatal(err)
	}
	// Spike: the reading triples, the truth does not.
	m.SetFault(faults.NewSpike(1.0, 3, 0, 1))
	j, err := m.ReadJoules()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-300) > 1 {
		t.Fatalf("spiked reading = %v, want ~300", j)
	}
	if math.Abs(m.TrueJoules()-100) > 1 {
		t.Fatalf("TrueJoules = %v, want ~100 (spikes are not energy)", m.TrueJoules())
	}
	// Dropout: the read fails like a failed sysfs read.
	m.SetFault(faults.NewDropout(1.0, 1))
	if _, err := m.ReadJoules(); !errors.Is(err, ErrReadingDropped) {
		t.Fatalf("err = %v, want ErrReadingDropped", err)
	}
}
