package measure

import (
	"fmt"
	"math"
	"time"
)

// CalibrationConfig tunes idle-baseline estimation. The zero value
// selects the defaults.
type CalibrationConfig struct {
	MinTrials int           // trials before early stop is considered (default 3)
	MaxTrials int           // hard trial cap (default 8)
	TrialDur  time.Duration // idle window per trial (default 50ms)
	// TargetCV is the coefficient of variation (stddev/mean) across
	// trials below which the baseline is declared stable and trials stop
	// early (default 0.05) — the JouleTrace shape: repeat until the
	// idle measurement is reproducible, not a fixed count.
	TargetCV float64
	Sleep    func(time.Duration) // injectable for tests (default time.Sleep)
	Now      func() time.Time    // injectable clock (default time.Now)
}

func (c CalibrationConfig) withDefaults() CalibrationConfig {
	if c.MinTrials <= 0 {
		c.MinTrials = 3
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 8
	}
	if c.MaxTrials < c.MinTrials {
		c.MaxTrials = c.MinTrials
	}
	if c.TrialDur <= 0 {
		c.TrialDur = 50 * time.Millisecond
	}
	if c.TargetCV <= 0 {
		c.TargetCV = 0.05
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Calibration is the result of an idle-baseline estimation run: what
// the Service subtracts from every sample before attribution, plus the
// provenance (/healthz, flight recorder) of how it was obtained.
type Calibration struct {
	Backend      string    `json:"backend"`
	BaselineW    float64   `json:"baseline_watts"`
	CV           float64   `json:"cv"`
	Trials       int       `json:"trials"`
	EarlyStopped bool      `json:"early_stopped"`
	TrialW       []float64 `json:"trial_watts,omitempty"`
}

// Calibrate measures the meter's idle baseline: repeated idle trials,
// each a (read, sleep, read) bracket, stopping early once the trial set
// is reproducible (CV at or below target after MinTrials). Run it while
// the host is quiescent — before the daemon admits sessions — or the
// baseline will swallow real work. A read error is terminal: a counter
// that cannot survive an idle calibration has no business backing
// budgets.
func Calibrate(m Meter, cfg CalibrationConfig) (Calibration, error) {
	cfg = cfg.withDefaults()
	cal := Calibration{Backend: m.Name()}
	prevJ, err := m.ReadJoules()
	if err != nil {
		return cal, fmt.Errorf("measure: calibration priming read: %w", err)
	}
	for i := 0; i < cfg.MaxTrials; i++ {
		t0 := cfg.Now()
		cfg.Sleep(cfg.TrialDur)
		dt := cfg.Now().Sub(t0).Seconds()
		j, err := m.ReadJoules()
		if err != nil {
			return cal, fmt.Errorf("measure: calibration trial %d read: %w", i+1, err)
		}
		if dt <= 0 {
			return cal, fmt.Errorf("measure: calibration trial %d: clock did not advance", i+1)
		}
		w := (j - prevJ) / dt
		prevJ = j
		if w < 0 {
			// A wrap mis-read at idle; count the trial as zero draw
			// rather than letting it drag the mean negative.
			w = 0
		}
		cal.TrialW = append(cal.TrialW, w)
		cal.Trials = len(cal.TrialW)
		cal.BaselineW, cal.CV = meanCV(cal.TrialW)
		if cal.Trials >= cfg.MinTrials && cal.CV <= cfg.TargetCV {
			cal.EarlyStopped = cal.Trials < cfg.MaxTrials
			break
		}
	}
	return cal, nil
}

// meanCV returns the mean and coefficient of variation (population
// stddev over mean; 0 when the mean is 0).
func meanCV(xs []float64) (mean, cv float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss/float64(len(xs))) / math.Abs(mean)
}
