package measure

import (
	"math"
	"sync"
	"time"
)

// VirtualClock is a monotone, hand-advanced time source for
// stimulus-driven simulated measurement. The daemon's sim-meter mode
// runs the whole pipeline — meter accrual, calibration sleeps, service
// sampling — on one of these, advancing it by each settled iteration's
// client-reported duration. Iterations complete at wire speed (far
// faster than the virtual work they represent), so deriving per-sample
// power from wall time would turn every deposit into a megawatt spike;
// on the virtual timeline the same deposit lands at the physical watt
// scale the plausibility gate is calibrated to judge.
type VirtualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewVirtualClock starts a virtual clock at a fixed epoch; only
// differences ever matter.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{t: time.Unix(0, 0)}
}

// Now returns the current virtual time (plug into SimConfig.Now,
// CalibrationConfig.Now and ServiceConfig.Now).
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by the given seconds. Non-positive,
// NaN and infinite values are ignored, and a single step is capped at a
// virtual year — a corrupt wire duration must not wrap the timeline.
func (c *VirtualClock) Advance(seconds float64) {
	if !(seconds > 0) || math.IsInf(seconds, 0) {
		return
	}
	const maxStepS = 365 * 24 * 3600.0
	if seconds > maxStepS {
		seconds = maxStepS
	}
	c.mu.Lock()
	c.t = c.t.Add(time.Duration(seconds * float64(time.Second)))
	c.mu.Unlock()
}

// Sleep advances the clock by d and returns immediately — calibration's
// trial wait, served in zero wall time (plug into
// CalibrationConfig.Sleep).
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
