package measure

import (
	"math"
	"sync"
	"time"

	"jouleguard/internal/guard"
	"jouleguard/internal/telemetry"
)

// ServiceConfig tunes the measurement service. Meter is required; the
// zero value of everything else selects the defaults.
type ServiceConfig struct {
	Meter        Meter
	SamplePeriod time.Duration // hot-loop tick (default 10ms)
	// Gate configures the per-sample plausibility gate (guard.Config
	// semantics; ModelPower is the fallback power substituted for
	// rejected samples).
	Gate guard.Config
	// Baseline is the idle calibration subtracted before attribution
	// (zero value = no subtraction).
	Baseline Calibration
	// QuarantineAfter is the consecutive-reject streak that marks the
	// meter quarantined (default 5). A quarantined meter keeps sampling
	// — every interval is debited at the model estimate — and recovers
	// on the first accepted sample.
	QuarantineAfter int
	// CPUShare, when set, scales each sample's attributable power by
	// the host's busy fraction over the sampling interval (see
	// linuxsys.CPUShare). Nil attributes the whole above-baseline
	// residual — correct for the simulator, where deposits are exactly
	// the sessions' work.
	CPUShare func() float64
	// MinPowerW is the low-side plausibility floor (default: half the
	// calibrated baseline). A calibrated host can never draw less than
	// its idle baseline, so a sample below the floor means the counter
	// is under-reporting — the signature of a frozen counter, whose
	// delta of exactly zero the median gate alone would eventually
	// accept as a legitimate level shift. Samples under the floor are
	// rejected and debited at the estimate, like any other implausible
	// reading. Set negative to disable (a baseline-free run).
	MinPowerW float64
	Now       func() time.Time     // injectable clock (default time.Now)
	Tel       *telemetry.Telemetry // optional: meter metrics + calibration record
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 10 * time.Millisecond
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 5
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.MinPowerW == 0 {
		c.MinPowerW = c.Baseline.BaselineW / 2
	}
	return c
}

// Status is one self-describing snapshot of the measurement pipeline —
// what /healthz and jgtop report.
type Status struct {
	Backend           string  `json:"backend"`
	BaselineW         float64 `json:"baseline_watts"`
	CalibrationCV     float64 `json:"calibration_cv"`
	CalibrationTrials int     `json:"calibration_trials"`
	EarlyStopped      bool    `json:"calibration_early_stopped"`
	Samples           uint64  `json:"samples"`
	GateAccepted      int     `json:"gate_accepted"`
	GateRejected      int     `json:"gate_rejected"`
	ReadErrors        uint64  `json:"read_errors"`
	LowPowerRejects   uint64  `json:"low_power_rejects"`
	Quarantined       bool    `json:"quarantined"`
	Quarantines       uint64  `json:"quarantines"`
	TrustedJ          float64 `json:"trusted_joules"`
	RawJ              float64 `json:"raw_joules"`
	AttributedJ       float64 `json:"attributed_joules"`
	UnattributedJ     float64 `json:"unattributed_joules"`
	OpenWindows       int     `json:"open_windows"`
	LastPowerW        float64 `json:"last_power_watts"`
}

// window is one open attribution bracket: a session iteration between
// Next and Done, accruing its weight-share of every sample's
// attributable energy.
type window struct {
	weight  float64
	accrued float64
}

// Service runs the measurement pipeline: a sampling loop over one Meter,
// the guard gate ruling on every per-sample power, baseline subtraction,
// and weight-shared attribution into open windows. All methods are safe
// for concurrent use; the Meter itself is only ever read under the
// service lock.
type Service struct {
	cfg ServiceConfig

	mu          sync.Mutex
	gate        *guard.Sensor
	lastJ       float64
	haveJ       bool
	lastT       time.Time
	haveT       bool
	windows     map[string]*window
	wsum        float64
	nSamples    uint64
	readErrs    uint64
	lowPower    uint64
	rawJ        float64
	attribJ     float64
	orphanJ     float64
	lastW       float64
	quarantined bool
	quarantines uint64

	stopCh chan struct{}
	doneCh chan struct{}

	m meterMetrics
}

// meterMetrics are the registry instruments; all nil when no Telemetry
// was configured (checked at the single update site).
type meterMetrics struct {
	samples     *telemetry.Counter
	accepted    *telemetry.Counter
	rejected    *telemetry.Counter
	readErrs    *telemetry.Counter
	quarantines *telemetry.Counter
	baselineW   *telemetry.Gauge
	powerW      *telemetry.Gauge
	trustedJ    *telemetry.Gauge
	attribJ     *telemetry.Gauge
	quarGauge   *telemetry.Gauge
}

// NewService builds the pipeline. The gate's fallback (Gate.ModelPower)
// should be a sane expected draw; rejected intervals are debited at that
// estimate instead of the implausible reading. When telemetry is
// configured the calibration is also filed in the flight recorder, so a
// recorded run carries its measurement provenance.
func NewService(cfg ServiceConfig) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		gate:    guard.New(cfg.Gate),
		windows: make(map[string]*window),
	}
	if tel := cfg.Tel; tel != nil {
		r := tel.Registry
		s.m = meterMetrics{
			samples:     r.Counter("jouleguard_meter_samples_total", "Meter samples taken by the measurement service."),
			accepted:    r.Counter("jouleguard_meter_gate_total", "Measurement-gate rulings.", telemetry.Label{Name: "verdict", Value: "accepted"}),
			rejected:    r.Counter("jouleguard_meter_gate_total", "Measurement-gate rulings.", telemetry.Label{Name: "verdict", Value: "rejected"}),
			readErrs:    r.Counter("jouleguard_meter_read_errors_total", "Meter reads that failed after retries."),
			quarantines: r.Counter("jouleguard_meter_quarantines_total", "Times the meter entered quarantine."),
			baselineW:   r.Gauge("jouleguard_meter_baseline_watts", "Calibrated idle baseline subtracted before attribution."),
			powerW:      r.Gauge("jouleguard_meter_power_watts", "Power acted on for the latest sample (post-gate)."),
			trustedJ:    r.Gauge("jouleguard_meter_trusted_joules", "Gate-cleaned cumulative energy ledger."),
			attribJ:     r.Gauge("jouleguard_meter_attributed_joules", "Energy attributed to session windows."),
			quarGauge:   r.Gauge("jouleguard_meter_quarantined", "1 while the meter is quarantined."),
		}
		s.m.baselineW.Set(cfg.Baseline.BaselineW)
		tel.RecordCalibration(cfg.Meter.Name(), cfg.Baseline.BaselineW, cfg.Baseline.CV,
			cfg.Baseline.Trials, cfg.Baseline.EarlyStopped)
	}
	return s
}

// Start launches the sampling loop. Stop() joins it.
func (s *Service) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopCh != nil {
		return
	}
	s.stopCh = make(chan struct{})
	s.doneCh = make(chan struct{})
	go s.loop(s.stopCh, s.doneCh)
}

// Stop terminates the sampling loop and waits for it.
func (s *Service) Stop() {
	s.mu.Lock()
	stop, done := s.stopCh, s.doneCh
	s.stopCh, s.doneCh = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (s *Service) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(s.cfg.SamplePeriod)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.Sample()
		}
	}
}

// Sample takes one measurement step: read the meter, rule on the
// interval's power, integrate the trusted ledger, attribute. Exported so
// the Done path can force a synchronous sample before closing a window
// (freshness) and so tests can drive the pipeline deterministically.
func (s *Service) Sample() {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	j, err := s.cfg.Meter.ReadJoules()
	if !s.haveT {
		s.lastT, s.haveT = now, true
		if err == nil {
			s.lastJ, s.haveJ = j, true
		}
		return
	}
	dt := now.Sub(s.lastT).Seconds()
	if dt <= 0 {
		return // same tick (a forced sample raced the loop); nothing to rule on
	}
	s.lastT = now
	s.nSamples++
	if s.m.samples != nil {
		s.m.samples.Inc()
	}

	var v guard.Verdict
	switch {
	case err != nil:
		// Lost read: the interval is charged at the model estimate via
		// the gate's Missing path, and the cumulative anchor is dropped
		// so the next good read re-primes instead of spanning the gap.
		s.readErrs++
		if s.m.readErrs != nil {
			s.m.readErrs.Inc()
		}
		s.haveJ = false
		v = s.gate.Missing(dt)
	case !s.haveJ:
		// Re-priming after an outage: this interval has only one good
		// endpoint, so it too is charged at the estimate.
		s.lastJ, s.haveJ = j, true
		v = s.gate.Missing(dt)
	default:
		delta := j - s.lastJ
		s.lastJ = j
		s.rawJ += delta
		power := delta / dt
		if power >= 0 && s.cfg.MinPowerW > 0 && power < s.cfg.MinPowerW {
			// Below the calibrated floor: a frozen or under-reporting
			// counter, not free energy. Debit the estimate.
			s.lowPower++
			v = s.gate.Missing(dt)
		} else {
			v = s.gate.Observe(power, dt)
		}
	}

	if v.Accepted {
		s.quarantined = false
	} else if !s.quarantined && s.gate.ConsecutiveRejects() >= s.cfg.QuarantineAfter {
		s.quarantined = true
		s.quarantines++
		if s.m.quarantines != nil {
			s.m.quarantines.Inc()
		}
	}
	s.lastW = v.Power

	// Attribution: the above-baseline share of the trusted power,
	// optionally scaled by the host's busy fraction, split across open
	// windows by weight. With no window open the residual is orphaned
	// (counted, not billed) — idle hosts burn joules nobody asked for.
	attW := v.Power - s.cfg.Baseline.BaselineW
	if attW < 0 || math.IsNaN(attW) {
		attW = 0
	}
	if s.cfg.CPUShare != nil {
		attW *= s.cfg.CPUShare()
	}
	if attJ := attW * dt; attJ > 0 {
		if s.wsum > 0 {
			for _, w := range s.windows {
				w.accrued += attJ * w.weight / s.wsum
			}
			s.attribJ += attJ
		} else {
			s.orphanJ += attJ
		}
	}

	if s.m.samples != nil {
		if v.Accepted {
			s.m.accepted.Inc()
		} else {
			s.m.rejected.Inc()
		}
		s.m.powerW.Set(v.Power)
		s.m.trustedJ.Set(s.gate.Energy())
		s.m.attribJ.Set(s.attribJ)
		s.m.quarGauge.SetBool(s.quarantined)
	}
}

// OpenWindow opens an attribution bracket for id with the given weight
// (a session's expected draw; anything non-positive counts as 1).
// Reopening an id resets its accrual.
func (s *Service) OpenWindow(id string, weight float64) {
	if !(weight > 0) || math.IsInf(weight, 0) {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.windows[id]; ok {
		s.wsum -= old.weight
	}
	s.windows[id] = &window{weight: weight}
	s.wsum += weight
}

// CloseWindow closes id's bracket and returns the joules attributed to
// it. ok is false when no such window is open (already closed, or a
// session torn down before its first Next).
func (s *Service) CloseWindow(id string) (joules float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, found := s.windows[id]
	if !found {
		return 0, false
	}
	delete(s.windows, id)
	s.wsum -= w.weight
	if s.wsum < 1e-12 {
		s.wsum = 0
	}
	return w.accrued, true
}

// SetModelPower updates the gate's fallback estimate as the fleet's
// expected draw changes (sessions arriving and leaving).
func (s *Service) SetModelPower(w float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gate.SetModelPower(w)
}

// Backend names the meter behind the service.
func (s *Service) Backend() string { return s.cfg.Meter.Name() }

// Status snapshots the pipeline.
func (s *Service) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	acc, rej := s.gate.Counts()
	return Status{
		Backend:           s.cfg.Meter.Name(),
		BaselineW:         s.cfg.Baseline.BaselineW,
		CalibrationCV:     s.cfg.Baseline.CV,
		CalibrationTrials: s.cfg.Baseline.Trials,
		EarlyStopped:      s.cfg.Baseline.EarlyStopped,
		Samples:           s.nSamples,
		GateAccepted:      acc,
		GateRejected:      rej,
		ReadErrors:        s.readErrs,
		LowPowerRejects:   s.lowPower,
		Quarantined:       s.quarantined,
		Quarantines:       s.quarantines,
		TrustedJ:          s.gate.Energy(),
		RawJ:              s.rawJ,
		AttributedJ:       s.attribJ,
		UnattributedJ:     s.orphanJ,
		OpenWindows:       len(s.windows),
		LastPowerW:        s.lastW,
	}
}
