package measure

import (
	"math/rand"
	"sync"
	"time"

	"jouleguard/internal/faults"
	"jouleguard/internal/sensors"
)

// SimConfig tunes the simulated meter. The zero value selects the
// defaults.
type SimConfig struct {
	IdleW  float64          // idle draw integrated in real time (default 2 W)
	NoiseW float64          // gaussian sigma on the idle power (default 0.02 W)
	Seed   int64            // noise seed; same seed, same readings
	Now    func() time.Time // injectable clock (default time.Now)
}

func (c SimConfig) withDefaults() SimConfig {
	if c.IdleW <= 0 {
		c.IdleW = 2
	}
	if c.NoiseW <= 0 {
		c.NoiseW = 0.02
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// SimMeter is the everywhere-backend: a fake energy counter with the
// same failure surface as the hardware one. Idle power (plus seeded
// gaussian noise) accrues in real time; work energy arrives via Deposit
// from whatever is simulating the load. Energy passes through a 32-bit
// sensors.RAPL register first, so counter wrap-around is exercised on
// every run, and an optional faults.SensorFault chain perturbs the
// cumulative reading — the injected spikes, freezes and dropouts the
// measurement gate exists to catch.
//
// SimMeter is safe for concurrent use: Deposit is called from request
// handlers while ReadJoules runs on the sampling loop.
type SimMeter struct {
	mu      sync.Mutex
	cfg     SimConfig
	rng     *rand.Rand
	ctr     sensors.RAPL
	lastCtr uint32
	cumJ    float64 // wrap-corrected cumulative joules (pre-fault truth)
	trueJ   float64 // ground-truth deposits + idle, never perturbed
	lastT   time.Time
	started bool
	fault   faults.SensorFault
	iter    int
}

// NewSimMeter builds a simulated meter.
func NewSimMeter(cfg SimConfig) *SimMeter {
	cfg = cfg.withDefaults()
	return &SimMeter{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements Meter.
func (m *SimMeter) Name() string { return "sim" }

// SetFault installs a perturbation on the cumulative reading. Pass nil
// to clear. A fault only corrupts what ReadJoules reports — the true
// energy ledger keeps accruing, which is exactly why the gate must
// never debit a perturbed sample.
func (m *SimMeter) SetFault(f faults.SensorFault) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fault = f
}

// Deposit adds work energy to the fake hardware counter — the joules a
// simulated workload "physically" burned.
func (m *SimMeter) Deposit(joules float64) {
	if !(joules > 0) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ctr.Deposit(joules)
	m.trueJ += joules
}

// TrueJoules returns the unperturbed ground-truth energy (idle + all
// deposits) — what a perfect meter would have read. Tests and the smoke
// harness assert attribution against this, proving injected faults were
// rejected rather than debited.
func (m *SimMeter) TrueJoules() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.trueJ
}

// ReadJoules implements Meter: accrue idle power for the elapsed real
// time, reconstruct the cumulative total through the 32-bit register,
// then pass it through the fault chain.
func (m *SimMeter) ReadJoules() (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	if !m.started {
		m.lastT, m.started = now, true
	}
	dt := now.Sub(m.lastT).Seconds()
	m.lastT = now
	if dt > 0 {
		idle := (m.cfg.IdleW + m.cfg.NoiseW*m.rng.NormFloat64()) * dt
		if idle > 0 {
			m.ctr.Deposit(idle)
			m.trueJ += idle
		}
	}
	cur := m.ctr.Read()
	m.cumJ += sensors.EnergyBetween(m.lastCtr, cur)
	m.lastCtr = cur
	v := m.cumJ
	if m.fault != nil {
		out, ok := m.fault.Reading(m.iter, v)
		m.iter++
		if !ok {
			return 0, ErrReadingDropped
		}
		v = out
	}
	return v, nil
}
