// Package load drives a jouleguardd daemon with N simulated tenants and
// measures what the service layer adds on top of the governor: decision
// latency (wall-clock Next and Done round trips), aggregate throughput,
// and the fidelity of the budget guarantee across concurrently governed
// sessions.
//
// Each tenant is a faithful stand-in for a governed application: it runs
// its workload on a virtual clock and energy meter derived from the same
// platform models the paper's experiments use. When the daemon says
// (appCfg, sysCfg), the tenant "executes" the iteration by advancing its
// clock by work/rate(sysCfg) seconds and its meter by power(sysCfg) x
// that duration — so the governor under test observes exactly the
// dynamics it would on the modeled machine, while the wire round trips
// are real HTTP over real sockets.
package load

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"jouleguard"
	"jouleguard/internal/client"
	"jouleguard/internal/wire"
)

// Config describes one load run.
type Config struct {
	BaseURL    string
	Tenants    int
	Iterations int      // per tenant
	Apps       []string // assigned round-robin; default x264
	Platform   string   // default Server
	Factor     float64  // >0: per-tenant absolute budget priced from factor
	Weight     float64  // used when Factor==0 (weighted-share mode)
	MinAcc     float64
	Seed       int64 // tenant i runs with Seed+i
	Retry      client.RetryPolicy
}

func (c Config) withDefaults() Config {
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Iterations <= 0 {
		c.Iterations = 100
	}
	if len(c.Apps) == 0 {
		c.Apps = []string{"x264"}
	}
	if c.Platform == "" {
		c.Platform = "Server"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TenantResult is one simulated tenant's outcome.
type TenantResult struct {
	Tenant     string
	SessionID  string
	App        string
	Iterations int
	GrantJ     float64
	SpentJ     float64 // daemon's ledger (authoritative)
	MeteredJ   float64 // tenant's own virtual meter
	MeanAcc    float64
	Err        error
}

// OverGrant reports the tenant's spend as a fraction of its grant
// (1.0 = exactly on budget).
func (t TenantResult) OverGrant() float64 {
	if t.GrantJ <= 0 {
		return 0
	}
	return t.SpentJ / t.GrantJ
}

// Report aggregates a load run.
type Report struct {
	Tenants    []TenantResult
	Elapsed    time.Duration
	Iterations int // total completed across tenants

	NextP50, NextP99 time.Duration // Next round-trip latency
	DoneP50, DoneP99 time.Duration // Done round-trip latency
	Throughput       float64       // governed iterations per wall-clock second

	TotalSpentJ  float64
	TotalGrantJ  float64
	MaxOverGrant float64 // worst per-tenant spend/grant ratio
	Errors       int
}

// Check asserts the run's guarantees: every tenant finished, and no
// tenant overran its grant by more than slack (e.g. 1.05 for the 5%
// tolerance the governor itself promises).
func (r *Report) Check(slack float64) error {
	if r.Errors > 0 {
		for _, t := range r.Tenants {
			if t.Err != nil {
				return fmt.Errorf("load: tenant %s failed: %w", t.Tenant, t.Err)
			}
		}
	}
	for _, t := range r.Tenants {
		if t.Iterations == 0 {
			return fmt.Errorf("load: tenant %s completed no iterations", t.Tenant)
		}
		if og := t.OverGrant(); og > slack {
			return fmt.Errorf("load: tenant %s spent %.1f J of a %.1f J grant (%.1f%% > %.1f%% slack)",
				t.Tenant, t.SpentJ, t.GrantJ, og*100, slack*100)
		}
	}
	return nil
}

// BenchLines renders the latency results in `go test -bench` format so
// cmd/benchjson can fold them into BENCH_experiments.json.
func (r *Report) BenchLines() []string {
	lines := []string{
		fmt.Sprintf("BenchmarkServeNextP50\t%d\t%d ns/op", r.Iterations, r.NextP50.Nanoseconds()),
		fmt.Sprintf("BenchmarkServeNextP99\t%d\t%d ns/op", r.Iterations, r.NextP99.Nanoseconds()),
		fmt.Sprintf("BenchmarkServeDoneP50\t%d\t%d ns/op", r.Iterations, r.DoneP50.Nanoseconds()),
		fmt.Sprintf("BenchmarkServeDoneP99\t%d\t%d ns/op", r.Iterations, r.DoneP99.Nanoseconds()),
	}
	if r.Throughput > 0 {
		lines = append(lines, fmt.Sprintf("BenchmarkServeIteration\t%d\t%d ns/op",
			r.Iterations, int64(float64(time.Second)/r.Throughput)))
	}
	return lines
}

// Summary is a one-paragraph human rendering of the report.
func (r *Report) Summary() string {
	return fmt.Sprintf(
		"%d tenants, %d iterations in %v (%.0f iter/s); Next p50=%v p99=%v, Done p50=%v p99=%v; "+
			"spent %.1f J of %.1f J granted, worst tenant at %.1f%% of grant, %d errors",
		len(r.Tenants), r.Iterations, r.Elapsed.Round(time.Millisecond), r.Throughput,
		r.NextP50, r.NextP99, r.DoneP50, r.DoneP99,
		r.TotalSpentJ, r.TotalGrantJ, r.MaxOverGrant*100, r.Errors)
}

// tenant is the virtual application: clock and meter advance by the
// platform model, decisions come from the wire.
type tenant struct {
	name string
	app  string
	cfg  Config
	tb   *jouleguard.Testbed

	clockS  float64 // virtual seconds
	energyJ float64 // virtual cumulative joules

	nextLat []time.Duration
	doneLat []time.Duration
	res     TenantResult
}

// run executes the tenant's whole workload against the daemon.
func (t *tenant) run() {
	t.res = TenantResult{Tenant: t.name, App: t.app}
	opts := client.Options{
		BaseURL:     t.cfg.BaseURL,
		Tenant:      t.name,
		Weight:      t.cfg.Weight,
		App:         t.app,
		Platform:    t.cfg.Platform,
		Iterations:  t.cfg.Iterations,
		MinAccuracy: t.cfg.MinAcc,
		Retry:       t.cfg.Retry,
	}
	if t.cfg.Factor > 0 {
		b, err := t.tb.Budget(t.cfg.Factor, t.cfg.Iterations)
		if err != nil {
			t.res.Err = err
			return
		}
		opts.BudgetJ = b
	}
	opts.Seed = t.cfg.Seed
	sess, err := client.Open(opts, t.readEnergy, t.readNow)
	if err != nil {
		t.res.Err = err
		return
	}
	t.res.SessionID = sess.ID()
	t.res.GrantJ = sess.GrantJ()
	accSum := 0.0
	for i := 0; i < t.cfg.Iterations; i++ {
		start := time.Now()
		appCfg, sysCfg, err := sess.Next()
		t.nextLat = append(t.nextLat, time.Since(start))
		if err != nil {
			if client.IsCode(err, wire.CodeSessionComplete) {
				// A daemon restart can settle a retried iteration twice,
				// completing the workload one client call early; that is
				// graceful completion, not a failure.
				t.res.Iterations = t.cfg.Iterations
				break
			}
			t.res.Err = fmt.Errorf("iteration %d Next: %w", i, err)
			break
		}
		// "Execute" the iteration on the modeled machine.
		work, acc := t.tb.App.Step(appCfg, i)
		rate := t.tb.Platform.Rate(sysCfg, t.tb.Profile)
		dur := work / rate
		t.clockS += dur
		t.energyJ += t.tb.Platform.Power(sysCfg, t.tb.Profile) * dur
		accSum += acc

		start = time.Now()
		if err := sess.Done(acc); err != nil {
			t.doneLat = append(t.doneLat, time.Since(start))
			t.res.Err = fmt.Errorf("iteration %d Done: %w", i, err)
			break
		}
		t.doneLat = append(t.doneLat, time.Since(start))
		t.res.Iterations++
	}
	t.res.SpentJ = sess.LastStatus().SpentJ
	t.res.MeteredJ = t.energyJ
	if t.res.Iterations > 0 {
		t.res.MeanAcc = accSum / float64(t.res.Iterations)
	}
	if err := sess.Close(); err != nil && t.res.Err == nil {
		t.res.Err = fmt.Errorf("close: %w", err)
	}
}

func (t *tenant) readEnergy() (float64, error) { return t.energyJ, nil }
func (t *tenant) readNow() float64             { return t.clockS }

// Run drives cfg.Tenants concurrent sessions to completion and reports.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	tenants := make([]*tenant, cfg.Tenants)
	for i := range tenants {
		app := cfg.Apps[i%len(cfg.Apps)]
		tb, err := jouleguard.NewTestbed(app, cfg.Platform)
		if err != nil {
			return nil, err
		}
		tcfg := cfg
		tcfg.Seed = cfg.Seed + int64(i)
		tenants[i] = &tenant{
			name: fmt.Sprintf("tenant-%02d", i),
			app:  app, cfg: tcfg, tb: tb,
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for _, t := range tenants {
		wg.Add(1)
		go func(t *tenant) {
			defer wg.Done()
			t.run()
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{Elapsed: elapsed}
	var nextAll, doneAll []time.Duration
	for _, t := range tenants {
		rep.Tenants = append(rep.Tenants, t.res)
		rep.Iterations += t.res.Iterations
		rep.TotalSpentJ += t.res.SpentJ
		rep.TotalGrantJ += t.res.GrantJ
		rep.MaxOverGrant = math.Max(rep.MaxOverGrant, t.res.OverGrant())
		if t.res.Err != nil {
			rep.Errors++
		}
		nextAll = append(nextAll, t.nextLat...)
		doneAll = append(doneAll, t.doneLat...)
	}
	rep.NextP50, rep.NextP99 = quantiles(nextAll)
	rep.DoneP50, rep.DoneP99 = quantiles(doneAll)
	if elapsed > 0 {
		rep.Throughput = float64(rep.Iterations) / elapsed.Seconds()
	}
	return rep, nil
}

// quantiles returns the p50 and p99 of a latency sample.
func quantiles(d []time.Duration) (p50, p99 time.Duration) {
	if len(d) == 0 {
		return 0, 0
	}
	s := make([]time.Duration, len(d))
	copy(s, d)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return at(0.50), at(0.99)
}
