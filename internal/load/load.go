// Package load drives a jouleguardd daemon with N simulated tenants and
// measures what the service layer adds on top of the governor: decision
// latency (wall-clock Next and Done round trips), aggregate throughput,
// and the fidelity of the budget guarantee across concurrently governed
// sessions.
//
// Each tenant is a faithful stand-in for a governed application: it runs
// its workload on a virtual clock and energy meter derived from the same
// platform models the paper's experiments use. When the daemon says
// (appCfg, sysCfg), the tenant "executes" the iteration by advancing its
// clock by work/rate(sysCfg) seconds and its meter by power(sysCfg) x
// that duration — so the governor under test observes exactly the
// dynamics it would on the modeled machine, while the wire round trips
// are real HTTP over real sockets.
package load

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jouleguard"
	"jouleguard/internal/client"
	"jouleguard/internal/metrics"
	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// Config describes one load run.
type Config struct {
	BaseURL    string
	Tenants    int
	Iterations int      // per tenant
	Apps       []string // assigned round-robin; default x264
	Platform   string   // default Server
	Factor     float64  // >0: per-tenant absolute budget priced from factor
	Weight     float64  // used when Factor==0 (weighted-share mode)
	MinAcc     float64
	Seed       int64 // tenant i runs with Seed+i
	Retry      client.RetryPolicy
	// Tier is the QoS class honest tenants claim at registration
	// (guaranteed | standard | best-effort; empty = standard).
	Tier string

	// Adversaries converts the last N tenants into deliberately
	// misbehaving ones: each claims AdversaryWeight times an honest
	// share, registers under AdversaryTier, and keeps hammering the
	// daemon — re-registering straight through every enforcement denial
	// — until the honest tenants finish. Their denials are tallied in
	// the report instead of counting as run errors; the run's verdict
	// comes from CheckIsolation, which asserts the honest tenants never
	// felt them.
	Adversaries int
	// AdversaryTier is the QoS class adversaries claim (default
	// best-effort, the first tier overload shedding sacrifices).
	AdversaryTier string
	// AdversaryWeight is the claim multiple an adversary asks for —
	// AdversaryWeight times an honest tenant's absolute budget in
	// factor-priced mode, or its weight in weighted mode (default 10:
	// ten honest tenants' worth of the pool).
	AdversaryWeight float64

	// WireV2 moves the per-iteration traffic onto the v2 binary frame
	// stream with the batched DoneNext loop (settle + next decision in
	// one round trip). False pins tenants to v1 JSON/HTTP, keeping the
	// baseline measurement honest.
	WireV2 bool
	// Duration switches the run open-loop: tenants issue iterations as
	// fast as the daemon answers until the wall-clock window closes (or
	// their workload completes), measuring sustained decisions/s rather
	// than time-to-complete-N. Set Iterations high enough that no tenant
	// finishes early.
	Duration time.Duration

	// CoordinatorURL switches the run to cluster mode: tenants register
	// through the fleet coordinator (each under a stable session key) and
	// ride through node failures via the client's failover path. BaseURL
	// is ignored.
	CoordinatorURL string
	// CoordinatorURLs is the ordered failover list clients rotate to when
	// the primary coordinator is unreachable or deposed (standbys).
	CoordinatorURLs []string
	// KillAt arranges a mid-run node failure: once the fleet has
	// completed KillAt iterations in total, Kill is invoked (once). The
	// run then measures how tenants ride through the failover.
	KillAt int
	Kill   func()
	// Kills schedules additional mid-run failure injections (e.g. killing
	// the coordinator itself); each fires once, in iteration order.
	Kills []Kill

	// TraceEvery head-samples distributed traces on every tenant's
	// session: each tenant mints a trace context on its first governed
	// round and every TraceEvery-th after (0 = the client default 1/256;
	// negative disables tracing).
	TraceEvery int
	// Tracer records the client-side root spans of sampled rounds; shared
	// across all tenants (SpanBuffer is concurrency-safe). Nil: contexts
	// are still minted and propagated, nothing is recorded locally.
	Tracer *telemetry.SpanBuffer
}

// Kill is one scheduled mid-run failure injection: Do runs once the
// fleet as a whole has completed At iterations.
type Kill struct {
	At int
	Do func()
}

func (c Config) withDefaults() Config {
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Iterations <= 0 {
		c.Iterations = 100
	}
	if len(c.Apps) == 0 {
		c.Apps = []string{"x264"}
	}
	if c.Platform == "" {
		c.Platform = "Server"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Adversaries >= c.Tenants {
		// At least one honest tenant: the isolation property is about
		// them, and an all-adversary run would never terminate.
		c.Adversaries = c.Tenants - 1
	}
	if c.Adversaries < 0 {
		c.Adversaries = 0
	}
	if c.AdversaryTier == "" {
		c.AdversaryTier = "best-effort"
	}
	if c.AdversaryWeight <= 0 {
		c.AdversaryWeight = 10
	}
	return c
}

// TenantResult is one simulated tenant's outcome.
type TenantResult struct {
	Tenant     string
	SessionID  string
	App        string
	Iterations int
	GrantJ     float64
	SpentJ     float64 // daemon's ledger (authoritative)
	MeteredJ   float64 // tenant's own virtual meter
	MeanAcc    float64
	Failovers  int // node migrations the client rode through
	// CoordFailovers counts coordinator rotations: placement lookups the
	// client had to re-aim at a standby after the primary died or was
	// deposed.
	CoordFailovers int
	// TraceID is the tenant's most recently minted distributed-trace id
	// (0 if tracing was disabled or no round was sampled) — the join key
	// harnesses use to find this tenant's spans across nodes.
	TraceID uint64
	Err     error

	// Adversary marks a deliberately misbehaving tenant: enforcement
	// denials are its expected outcome, so they are tallied here rather
	// than surfacing as Err.
	Adversary bool
	// Registrations counts the sessions the adversary opened (it
	// re-registers through every denial).
	Registrations int
	// Throttled, Suspended and Shed tally the enforcement denials the
	// tenant drew, by wire code.
	Throttled, Suspended, Shed int
}

// OverGrant reports the tenant's spend as a fraction of its grant
// (1.0 = exactly on budget).
func (t TenantResult) OverGrant() float64 {
	if t.GrantJ <= 0 {
		return 0
	}
	return t.SpentJ / t.GrantJ
}

// Report aggregates a load run.
type Report struct {
	Tenants    []TenantResult
	Elapsed    time.Duration
	Iterations int // total completed across tenants

	NextP50, NextP99 time.Duration // Next round-trip latency
	DoneP50, DoneP99 time.Duration // Done round-trip latency
	IterP50, IterP99 time.Duration // whole-iteration wire latency
	Throughput       float64       // governed iterations per wall-clock second

	// Decisions counts the individual decisions the daemon served (each
	// iteration is one Next plus one Done, however they were framed);
	// DecisionsPerSec is their sustained rate over the run.
	Decisions       int
	DecisionsPerSec float64

	TotalSpentJ  float64
	TotalGrantJ  float64
	MaxOverGrant float64 // worst per-tenant spend/grant ratio
	Errors       int

	// Cluster-mode extras: total node migrations clients rode through,
	// the coordinator rotations absorbed inside them, and the latency of
	// the calls that absorbed a migration (placement lookup + re-register
	// + catch-up replay, end to end as the application felt it).
	Failovers        int
	CoordFailovers   int
	FailP50, FailP99 time.Duration

	// Adversarial-mode extras: the enforcement denials adversaries drew
	// across the run, by wire code.
	Throttled, Suspended, Shed int
}

// Check asserts the run's guarantees: every tenant finished, and no
// tenant overran its grant by more than slack (e.g. 1.05 for the 5%
// tolerance the governor itself promises).
func (r *Report) Check(slack float64) error {
	if r.Errors > 0 {
		for _, t := range r.Tenants {
			if t.Err != nil {
				return fmt.Errorf("load: tenant %s failed: %w", t.Tenant, t.Err)
			}
		}
	}
	for _, t := range r.Tenants {
		if t.Adversary {
			continue // judged by CheckIsolation, not by completion
		}
		if t.Iterations == 0 {
			return fmt.Errorf("load: tenant %s completed no iterations", t.Tenant)
		}
		if og := t.OverGrant(); og > slack {
			return fmt.Errorf("load: tenant %s spent %.1f J of a %.1f J grant (%.1f%% > %.1f%% slack)",
				t.Tenant, t.SpentJ, t.GrantJ, og*100, slack*100)
		}
	}
	return nil
}

// CheckIsolation asserts the adversarial run's headline property: every
// honest tenant finished its workload within slack of its grant and
// drew no enforcement denial, while the adversaries — the only tenants
// allowed to feel the ladder — drew at least one. Call it instead of
// Check when Config.Adversaries > 0.
func (r *Report) CheckIsolation(slack float64) error {
	if err := r.Check(slack); err != nil {
		return err
	}
	advDenials := 0
	for _, t := range r.Tenants {
		if t.Adversary {
			advDenials += t.Throttled + t.Suspended + t.Shed
			continue
		}
		if n := t.Throttled + t.Suspended + t.Shed; n > 0 {
			return fmt.Errorf("load: honest tenant %s drew %d enforcement denials (throttled %d, suspended %d, shed %d)",
				t.Tenant, n, t.Throttled, t.Suspended, t.Shed)
		}
	}
	if advDenials == 0 {
		return fmt.Errorf("load: adversaries ran unenforced: not one drew an enforcement denial")
	}
	return nil
}

// BenchLines renders the latency results in `go test -bench` format so
// cmd/benchjson can fold them into BENCH_experiments.json. prefix names
// the scenario ("Serve" for one daemon, "Cluster" for a fleet run).
func (r *Report) BenchLines(prefix string) []string {
	if prefix == "" {
		prefix = "Serve"
	}
	lines := []string{
		fmt.Sprintf("Benchmark%sNextP50\t%d\t%d ns/op", prefix, r.Iterations, r.NextP50.Nanoseconds()),
		fmt.Sprintf("Benchmark%sNextP99\t%d\t%d ns/op", prefix, r.Iterations, r.NextP99.Nanoseconds()),
		fmt.Sprintf("Benchmark%sDoneP50\t%d\t%d ns/op", prefix, r.Iterations, r.DoneP50.Nanoseconds()),
		fmt.Sprintf("Benchmark%sDoneP99\t%d\t%d ns/op", prefix, r.Iterations, r.DoneP99.Nanoseconds()),
	}
	if r.IterP50 > 0 {
		lines = append(lines,
			fmt.Sprintf("Benchmark%sIterP50\t%d\t%d ns/op", prefix, r.Iterations, r.IterP50.Nanoseconds()),
			fmt.Sprintf("Benchmark%sIterP99\t%d\t%d ns/op", prefix, r.Iterations, r.IterP99.Nanoseconds()))
	}
	if r.Throughput > 0 {
		lines = append(lines, fmt.Sprintf("Benchmark%sIteration\t%d\t%d ns/op",
			prefix, r.Iterations, int64(float64(time.Second)/r.Throughput)))
	}
	if r.DecisionsPerSec > 0 {
		lines = append(lines, fmt.Sprintf("Benchmark%sThroughput\t%d\t%.0f decisions/s",
			prefix, r.Decisions, r.DecisionsPerSec))
	}
	if r.Failovers > 0 {
		lines = append(lines,
			fmt.Sprintf("Benchmark%sFailoverP50\t%d\t%d ns/op", prefix, r.Failovers, r.FailP50.Nanoseconds()),
			fmt.Sprintf("Benchmark%sFailoverP99\t%d\t%d ns/op", prefix, r.Failovers, r.FailP99.Nanoseconds()))
	}
	if n := r.Throttled + r.Suspended + r.Shed; n > 0 {
		lines = append(lines,
			fmt.Sprintf("Benchmark%sDenials\t%d\t%d denials", prefix, n, n),
			fmt.Sprintf("Benchmark%sThrottled\t%d\t%d denials", prefix, n, r.Throttled),
			fmt.Sprintf("Benchmark%sSuspended\t%d\t%d denials", prefix, n, r.Suspended),
			fmt.Sprintf("Benchmark%sShed\t%d\t%d denials", prefix, n, r.Shed))
	}
	return lines
}

// Summary is a one-paragraph human rendering of the report.
func (r *Report) Summary() string {
	return fmt.Sprintf(
		"%d tenants, %d iterations in %v (%.0f iter/s, %.0f decisions/s); "+
			"Next p50=%v p99=%v, Done p50=%v p99=%v, iter p50=%v p99=%v; "+
			"spent %.1f J of %.1f J granted, worst tenant at %.1f%% of grant, %d errors",
		len(r.Tenants), r.Iterations, r.Elapsed.Round(time.Millisecond), r.Throughput, r.DecisionsPerSec,
		r.NextP50, r.NextP99, r.DoneP50, r.DoneP99, r.IterP50, r.IterP99,
		r.TotalSpentJ, r.TotalGrantJ, r.MaxOverGrant*100, r.Errors)
}

// tenant is the virtual application: clock and meter advance by the
// platform model, decisions come from the wire.
type tenant struct {
	name      string
	app       string
	cfg       Config
	tb        *jouleguard.Testbed
	adversary bool

	clockS  float64 // virtual seconds
	energyJ float64 // virtual cumulative joules

	nextLat   []time.Duration
	doneLat   []time.Duration
	iterLat   []time.Duration // whole-iteration wire latency
	failLat   []time.Duration // calls that absorbed a node migration
	wireCalls int             // decisions served (Next + Done, however framed)
	done      *atomic.Int64   // fleet-wide completed-iteration counter
	stepMemo  map[int][2]float64
	res       TenantResult
}

// step returns the app model's (work, accuracy) for a configuration.
// Open-loop runs (Duration > 0) memoize per configuration: the frame
// models cost hundreds of microseconds per simulated iteration, which
// at saturation would measure the simulator, not the daemon.
// Closed-loop runs keep the full per-iteration model so accuracy and
// energy trajectories stay faithful.
func (t *tenant) step(appCfg, i int) (work, acc float64) {
	if t.cfg.Duration <= 0 {
		return t.tb.App.Step(appCfg, i)
	}
	if v, ok := t.stepMemo[appCfg]; ok {
		return v[0], v[1]
	}
	if t.stepMemo == nil {
		t.stepMemo = map[int][2]float64{}
	}
	work, acc = t.tb.App.Step(appCfg, i)
	t.stepMemo[appCfg] = [2]float64{work, acc}
	return work, acc
}

// run executes the tenant's whole workload against the daemon.
func (t *tenant) run(ctx context.Context) {
	t.res = TenantResult{Tenant: t.name, App: t.app}
	opts := client.Options{
		BaseURL:     t.cfg.BaseURL,
		Tenant:      t.name,
		Weight:      t.cfg.Weight,
		App:         t.app,
		Platform:    t.cfg.Platform,
		Iterations:  t.cfg.Iterations,
		MinAccuracy: t.cfg.MinAcc,
		Tier:        t.cfg.Tier,
		Retry:       t.cfg.Retry,
		DisableV2:   !t.cfg.WireV2,
		TraceEvery:  t.cfg.TraceEvery,
		Tracer:      t.cfg.Tracer,
	}
	if t.cfg.CoordinatorURL != "" {
		opts.CoordinatorURL = t.cfg.CoordinatorURL
		opts.CoordinatorURLs = t.cfg.CoordinatorURLs
		opts.Key = t.name
		opts.BaseURL = ""
	}
	if t.cfg.Factor > 0 {
		b, err := t.tb.Budget(t.cfg.Factor, t.cfg.Iterations)
		if err != nil {
			t.res.Err = err
			return
		}
		opts.BudgetJ = b
	}
	opts.Seed = t.cfg.Seed
	sess, err := client.Open(ctx, opts, t.readEnergy, t.readNow)
	if err != nil {
		t.res.Err = err
		return
	}
	t.res.SessionID = sess.ID()
	t.res.GrantJ = sess.GrantJ()
	accSum := 0.0
	var deadline time.Time
	if t.cfg.Duration > 0 {
		deadline = time.Now().Add(t.cfg.Duration)
	}
	armed := false
	var appCfg, sysCfg int
	var nextLat time.Duration
	for i := 0; i < t.cfg.Iterations; i++ {
		if !armed {
			fo := sess.Failovers()
			start := time.Now()
			var err error
			appCfg, sysCfg, err = sess.Next(ctx)
			nextLat = time.Since(start)
			t.nextLat = append(t.nextLat, nextLat)
			t.wireCalls++
			if sess.Failovers() > fo {
				t.failLat = append(t.failLat, nextLat)
			}
			if err != nil {
				if client.IsCode(err, wire.CodeSessionComplete) {
					// A daemon restart can settle a retried iteration twice,
					// completing the workload one client call early; that is
					// graceful completion, not a failure.
					t.res.Iterations = t.cfg.Iterations
					break
				}
				t.res.Err = fmt.Errorf("iteration %d Next: %w", i, err)
				break
			}
			armed = true
		}
		// "Execute" the iteration on the modeled machine.
		work, acc := t.step(appCfg, i)
		rate := t.tb.Platform.Rate(sysCfg, t.tb.Profile)
		dur := work / rate
		t.clockS += dur
		t.energyJ += t.tb.Platform.Power(sysCfg, t.tb.Profile) * dur
		accSum += acc

		last := i == t.cfg.Iterations-1 ||
			(!deadline.IsZero() && time.Now().After(deadline))
		if t.cfg.WireV2 && !last {
			// Steady state: settle this iteration and fetch the next
			// decision in one batched round trip.
			fo := sess.Failovers()
			start := time.Now()
			nextApp, nextSys, err := sess.DoneNext(ctx, acc)
			lat := time.Since(start)
			t.iterLat = append(t.iterLat, lat)
			t.wireCalls += 2
			if sess.Failovers() > fo {
				t.failLat = append(t.failLat, lat)
			}
			if err != nil {
				if client.IsCode(err, wire.CodeSessionComplete) {
					// The Done half settled before the workload completed.
					t.res.Iterations++
					if t.done != nil {
						t.done.Add(1)
					}
					break
				}
				t.res.Err = fmt.Errorf("iteration %d DoneNext: %w", i, err)
				break
			}
			appCfg, sysCfg = nextApp, nextSys
			t.res.Iterations++
			if t.done != nil {
				t.done.Add(1)
			}
			continue
		}
		fo := sess.Failovers()
		start := time.Now()
		err := sess.Done(ctx, acc)
		lat := time.Since(start)
		t.doneLat = append(t.doneLat, lat)
		if !t.cfg.WireV2 {
			// One v1 iteration's wire cost is its own Next plus this Done;
			// in batched mode the DoneNext round trip above is the sample.
			t.iterLat = append(t.iterLat, nextLat+lat)
		}
		t.wireCalls++
		if sess.Failovers() > fo {
			t.failLat = append(t.failLat, lat)
		}
		if err != nil {
			t.res.Err = fmt.Errorf("iteration %d Done: %w", i, err)
			break
		}
		armed = false
		t.res.Iterations++
		if t.done != nil {
			t.done.Add(1)
		}
		if last {
			break
		}
	}
	t.res.SpentJ = sess.LastStatus().SpentJ
	t.res.MeteredJ = t.energyJ
	if t.res.Iterations > 0 {
		t.res.MeanAcc = accSum / float64(t.res.Iterations)
	}
	t.res.Failovers = sess.Failovers()
	t.res.CoordFailovers = sess.CoordFailovers()
	t.res.TraceID = sess.LastTraceID()
	if err := sess.Close(ctx); err != nil && t.res.Err == nil {
		t.res.Err = fmt.Errorf("close: %w", err)
	}
	// An honest tenant hitting the ladder is an isolation failure;
	// tally the denial so CheckIsolation can name it.
	t.noteDenial(t.res.Err)
}

func (t *tenant) readEnergy() (float64, error) { return t.energyJ, nil }
func (t *tenant) readNow() float64             { return t.clockS }

// noteDenial classifies err as an enforcement denial and tallies it on
// the result, reporting whether it was one.
func (t *tenant) noteDenial(err error) bool {
	switch {
	case err == nil:
		return false
	case client.IsCode(err, wire.CodeTenantThrottled):
		t.res.Throttled++
	case client.IsCode(err, wire.CodeTenantSuspended):
		t.res.Suspended++
	case client.IsCode(err, wire.CodeTenantShed):
		t.res.Shed++
	default:
		return false
	}
	return true
}

// runAdversary executes the tenant as a hostile load source: it claims
// AdversaryWeight honest shares under AdversaryTier and drives
// iterations as fast as the daemon answers, re-registering straight
// through every enforcement denial until stop closes. Denials are
// tallied, and every other error simply ends the current session — an
// adversary's job is to be refused, so nothing it experiences fails
// the run (the honest tenants are the run's verdict). Its latencies
// are never sampled: hostile traffic must not pollute the quantiles.
func (t *tenant) runAdversary(ctx context.Context, stop <-chan struct{}) {
	t.res = TenantResult{Tenant: t.name, App: t.app, Adversary: true}
	for {
		select {
		case <-stop:
			return
		default:
		}
		// Fresh virtual clock and meter per registration: each session's
		// readings are its own, as a restarted application's would be.
		t.clockS, t.energyJ = 0, 0
		opts := client.Options{
			BaseURL:     t.cfg.BaseURL,
			Tenant:      t.name,
			App:         t.app,
			Platform:    t.cfg.Platform,
			Iterations:  t.cfg.Iterations,
			MinAccuracy: t.cfg.MinAcc,
			Tier:        t.cfg.AdversaryTier,
			Retry:       t.cfg.Retry,
			DisableV2:   true,
			Seed:        t.cfg.Seed,
		}
		// Claim AdversaryWeight honest tenants' worth of the pool, in
		// whichever pricing mode the honest tenants use. Admission is
		// claim-blind while the pool has room — noticing and punishing
		// the sustained hogging is the QoS ladder's job.
		if t.cfg.Factor > 0 {
			b, err := t.tb.Budget(t.cfg.Factor, t.cfg.Iterations)
			if err != nil {
				t.res.Err = err
				return
			}
			opts.BudgetJ = b * t.cfg.AdversaryWeight
		} else {
			opts.Weight = t.cfg.AdversaryWeight * math.Max(t.cfg.Weight, 1)
		}
		if t.cfg.CoordinatorURL != "" {
			opts.CoordinatorURL = t.cfg.CoordinatorURL
			opts.CoordinatorURLs = t.cfg.CoordinatorURLs
			// A fresh key per attempt: a suspended tenant re-placing under
			// new keys is exactly the escape hatch fleet policy must close.
			opts.Key = fmt.Sprintf("%s-r%d", t.name, t.res.Registrations)
			opts.BaseURL = ""
		}
		sess, err := client.Open(ctx, opts, t.readEnergy, t.readNow)
		if err != nil {
			t.noteDenial(err)
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		t.res.Registrations++
		t.res.SessionID = sess.ID()
		t.res.GrantJ = sess.GrantJ()
		for i := 0; i < t.cfg.Iterations; i++ {
			select {
			case <-stop:
				_ = sess.Close(ctx)
				return
			default:
			}
			appCfg, sysCfg, err := sess.Next(ctx)
			t.wireCalls++
			if err != nil {
				t.noteDenial(err)
				break
			}
			work, acc := t.step(appCfg, i)
			dur := work / t.tb.Platform.Rate(sysCfg, t.tb.Profile)
			t.clockS += dur
			t.energyJ += t.tb.Platform.Power(sysCfg, t.tb.Profile) * dur
			err = sess.Done(ctx, acc)
			t.wireCalls++
			if err != nil {
				t.noteDenial(err)
				break
			}
			t.res.Iterations++
		}
		t.res.SpentJ += sess.LastStatus().SpentJ
		_ = sess.Close(ctx)
	}
}

// Run drives cfg.Tenants concurrent sessions to completion and reports.
// Cancelling ctx aborts the tenants' wire calls (including retry
// backoff) and the run returns with whatever completed.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	var done atomic.Int64
	honest := cfg.Tenants - cfg.Adversaries
	tenants := make([]*tenant, cfg.Tenants)
	for i := range tenants {
		app := cfg.Apps[i%len(cfg.Apps)]
		tb, err := jouleguard.NewTestbed(app, cfg.Platform)
		if err != nil {
			return nil, err
		}
		tcfg := cfg
		tcfg.Seed = cfg.Seed + int64(i)
		name := fmt.Sprintf("tenant-%02d", i)
		if i >= honest {
			name = fmt.Sprintf("adversary-%02d", i-honest)
		}
		tenants[i] = &tenant{
			name: name, adversary: i >= honest,
			app: app, cfg: tcfg, tb: tb, done: &done,
		}
	}
	// The kill watcher injects the scheduled mid-run failures (node
	// and/or coordinator kills) as the fleet-wide iteration count passes
	// each trigger, in order.
	kills := append([]Kill(nil), cfg.Kills...)
	if cfg.KillAt > 0 && cfg.Kill != nil {
		kills = append(kills, Kill{At: cfg.KillAt, Do: cfg.Kill})
	}
	sort.Slice(kills, func(i, j int) bool { return kills[i].At < kills[j].At })
	killCtx, stopKiller := context.WithCancel(ctx)
	defer stopKiller()
	if len(kills) > 0 {
		go func() {
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-killCtx.Done():
					return
				case <-tick.C:
					for len(kills) > 0 && done.Load() >= int64(kills[0].At) {
						kills[0].Do()
						kills = kills[1:]
					}
					if len(kills) == 0 {
						return
					}
				}
			}
		}()
	}
	start := time.Now()
	// Adversaries run until the honest tenants finish: the property
	// under test is that honest workloads complete while hostile load
	// is live the whole time, so the adversaries must never finish
	// first and quietly hand the pool back.
	advStop := make(chan struct{})
	var wg, advWG sync.WaitGroup
	for _, t := range tenants {
		if t.adversary {
			advWG.Add(1)
			go func(t *tenant) {
				defer advWG.Done()
				t.runAdversary(ctx, advStop)
			}(t)
			continue
		}
		wg.Add(1)
		go func(t *tenant) {
			defer wg.Done()
			t.run(ctx)
		}(t)
	}
	wg.Wait()
	close(advStop)
	advWG.Wait()
	elapsed := time.Since(start)

	rep := &Report{Elapsed: elapsed}
	var nextAll, doneAll, iterAll, failAll []time.Duration
	for _, t := range tenants {
		rep.Tenants = append(rep.Tenants, t.res)
		rep.Iterations += t.res.Iterations
		rep.TotalSpentJ += t.res.SpentJ
		rep.Decisions += t.wireCalls
		if t.res.Adversary {
			// Hostile traffic is reported (denials, spend) but never
			// judged: no error count, no grant-fidelity sample, no
			// latency samples.
			rep.Throttled += t.res.Throttled
			rep.Suspended += t.res.Suspended
			rep.Shed += t.res.Shed
			continue
		}
		rep.TotalGrantJ += t.res.GrantJ
		rep.MaxOverGrant = math.Max(rep.MaxOverGrant, t.res.OverGrant())
		if t.res.Err != nil {
			rep.Errors++
		}
		rep.Failovers += t.res.Failovers
		rep.CoordFailovers += t.res.CoordFailovers
		nextAll = append(nextAll, t.nextLat...)
		doneAll = append(doneAll, t.doneLat...)
		iterAll = append(iterAll, t.iterLat...)
		failAll = append(failAll, t.failLat...)
	}
	rep.NextP50, rep.NextP99 = quantiles(nextAll)
	rep.DoneP50, rep.DoneP99 = quantiles(doneAll)
	rep.IterP50, rep.IterP99 = quantiles(iterAll)
	rep.FailP50, rep.FailP99 = quantiles(failAll)
	if elapsed > 0 {
		rep.Throughput = float64(rep.Iterations) / elapsed.Seconds()
		rep.DecisionsPerSec = float64(rep.Decisions) / elapsed.Seconds()
	}
	return rep, nil
}

// quantiles folds a latency sample through the shared metrics summary
// (interpolating percentiles, same estimator the experiment tables use).
func quantiles(d []time.Duration) (p50, p99 time.Duration) {
	if len(d) == 0 {
		return 0, 0
	}
	xs := make([]float64, len(d))
	for i, v := range d {
		xs[i] = float64(v)
	}
	sum := metrics.Summarize(xs)
	return time.Duration(sum.P50), time.Duration(sum.P99)
}
