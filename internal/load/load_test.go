package load_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"jouleguard/internal/load"
	"jouleguard/internal/server"
)

// TestLoadRun drives a small fleet against an in-process daemon and pins
// the report's accounting: every tenant finishes, latency quantiles are
// populated, no tenant overruns its grant beyond the governor's slack,
// and the bench lines parse as benchmark output.
func TestLoadRun(t *testing.T) {
	srv, err := server.New(server.Config{GlobalBudgetJ: 100000, SweepInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := load.Run(context.Background(), load.Config{
		BaseURL:    ts.URL,
		Tenants:    4,
		Iterations: 20,
		Apps:       []string{"radar"},
		Platform:   "Tablet",
		Factor:     2,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 80 {
		t.Fatalf("fleet iterations %d, want 80", rep.Iterations)
	}
	if rep.Errors != 0 {
		for _, tr := range rep.Tenants {
			if tr.Err != nil {
				t.Errorf("tenant %s: %v", tr.Tenant, tr.Err)
			}
		}
		t.FailNow()
	}
	if rep.NextP50 <= 0 || rep.NextP99 < rep.NextP50 || rep.DoneP50 <= 0 {
		t.Fatalf("latency quantiles %v/%v/%v", rep.NextP50, rep.NextP99, rep.DoneP50)
	}
	if err := rep.Check(1.05); err != nil {
		t.Fatal(err)
	}
	if rep.TotalSpentJ > 100000 {
		t.Fatalf("fleet overran the global pool: %.1f", rep.TotalSpentJ)
	}
	lines := rep.BenchLines("")
	if len(lines) < 4 {
		t.Fatalf("bench lines: %v", lines)
	}
	for _, l := range lines {
		if l == "" || l[0:9] != "Benchmark" {
			t.Fatalf("malformed bench line %q", l)
		}
	}
	if rep.Summary() == "" {
		t.Fatal("empty summary")
	}
}
