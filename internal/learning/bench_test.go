package learning

import (
	"math/rand"
	"testing"
)

func benchBandit(b *testing.B, n int) *Bandit {
	b.Helper()
	bd, err := NewBandit(n, 0.85, FlatPriors{Rate: 10, Power: 5}, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return bd
}

func BenchmarkBanditObserve(b *testing.B) {
	bd := benchBandit(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.Observe(i%1024, 10, 5)
	}
}

// BenchmarkBestArm1024 is the Eqn 3 arg-max on the Server-sized space —
// the dominant term in the paper's Table 4 overhead.
func BenchmarkBestArm1024(b *testing.B) {
	bd := benchBandit(b, 1024)
	for i := 0; i < 1024; i++ {
		bd.Observe(i, float64(i+1), 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.BestArm()
	}
}

func BenchmarkVDBESelect(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	bd := benchBandit(b, 1024)
	v := NewVDBE(1024, 0.85, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Select(bd)
		v.Update(0.01, 2)
	}
}
