// Package learning implements the reinforcement-learning half of JouleGuard
// (Sec. 3.2): a multi-armed bandit over system configurations whose reward
// is energy efficiency, with Value-Difference Based Exploration (VDBE) to
// balance exploration and exploitation, and the optimistic
// linear-performance / cubic-power prior initialisation the paper relies on.
// A UCB1 policy is included for the exploration ablation.
package learning

import (
	"fmt"
	"math"
	"math/rand"

	"jouleguard/internal/control"
	"jouleguard/internal/telemetry"
)

// Estimator tracks one arm's (rate, power) estimates. The paper uses EWMA
// filters (Eqn 1); a Kalman variant is provided for the estimator ablation
// (adaptive-control literature the paper cites in Sec. 6.4 favours Kalman
// filters for resource provisioning).
type Estimator interface {
	Observe(rate, power float64)
	Rate() float64
	Power() float64
	Efficiency() float64
}

// Gainer is an optional Estimator extension exposing the filter gain —
// the EWMA alpha or the Kalman gain — for telemetry.
type Gainer interface {
	Gain() float64
}

// ewmaEstimator adapts control.RatePowerEstimate to the Estimator
// interface.
type ewmaEstimator struct {
	rp *control.RatePowerEstimate
}

func (e ewmaEstimator) Observe(rate, power float64) { e.rp.Observe(rate, power) }
func (e ewmaEstimator) Rate() float64               { return e.rp.Rate.Value() }
func (e ewmaEstimator) Power() float64              { return e.rp.Power.Value() }
func (e ewmaEstimator) Efficiency() float64         { return e.rp.Efficiency() }
func (e ewmaEstimator) Gain() float64               { return e.rp.Rate.Alpha() }

// kalmanEstimator tracks rate and power with scalar Kalman filters.
type kalmanEstimator struct {
	rate  *control.Kalman1D
	power *control.Kalman1D
}

func (k kalmanEstimator) Observe(rate, power float64) {
	k.rate.Observe(rate)
	k.power.Observe(power)
}
func (k kalmanEstimator) Rate() float64  { return k.rate.Value() }
func (k kalmanEstimator) Power() float64 { return k.power.Value() }
func (k kalmanEstimator) Gain() float64  { return k.rate.Gain() }
func (k kalmanEstimator) Efficiency() float64 {
	p := k.power.Value()
	if p <= 0 {
		return 0
	}
	return k.rate.Value() / p
}

// EstimatorFactory builds an estimator primed with an arm's priors.
type EstimatorFactory func(ratePrior, powerPrior float64) (Estimator, error)

// EWMAFactory is the paper's Eqn 1 estimator with gain alpha.
func EWMAFactory(alpha float64) EstimatorFactory {
	return func(ratePrior, powerPrior float64) (Estimator, error) {
		rp, err := control.NewRatePowerEstimate(alpha, ratePrior, powerPrior)
		if err != nil {
			return nil, err
		}
		return ewmaEstimator{rp}, nil
	}
}

// KalmanFactory builds Kalman estimators whose initial variance reflects
// low confidence in the priors; process/measurement noise scale with the
// prior magnitudes so the filter is unit-free.
func KalmanFactory() EstimatorFactory {
	return func(ratePrior, powerPrior float64) (Estimator, error) {
		return kalmanEstimator{
			rate:  control.NewKalman1D(ratePrior, ratePrior*ratePrior, 1e-4*ratePrior*ratePrior, 0.01*ratePrior*ratePrior),
			power: control.NewKalman1D(powerPrior, powerPrior*powerPrior, 1e-4*powerPrior*powerPrior, 0.01*powerPrior*powerPrior),
		}, nil
	}
}

// Arm is one bandit arm: a system configuration with estimates of its
// computation rate and power draw (paper Eqn 1).
type Arm struct {
	Estimate Estimator
	Pulls    int // times this arm was the active configuration
}

// Bandit tracks per-configuration estimates and selects configurations.
// It is policy-agnostic: Selectors (VDBE, FixedEpsilon, UCB1) decide between
// exploring and exploiting; the bandit supplies BestArm (Eqn 3) and the
// random draw.
type Bandit struct {
	arms []Arm
	// eff caches Estimate.Efficiency() per arm. Estimators change only
	// inside Observe, so the cache — and the running argmax below — stay
	// exact without ever re-querying the estimator interface. BestArm sat
	// at the top of the daemon's decision-path profile before this: every
	// Done rescanned all arms through two interface calls each.
	eff        []float64
	best       int // lowest-index argmax of eff
	bestPulled int // same, restricted to arms with Pulls > 0; -1 = none
	totalPulls int
	rng        *rand.Rand
	sink       telemetry.Sink
}

// NewBandit creates a bandit with one arm per configuration, using the
// paper's EWMA estimators with gain alpha. priors supplies the initial
// (rate, power) estimate per arm; it must cover every arm.
func NewBandit(n int, alpha float64, priors Priors, rng *rand.Rand) (*Bandit, error) {
	return NewBanditWithEstimators(n, EWMAFactory(alpha), priors, rng)
}

// NewBanditWithEstimators creates a bandit with a custom estimator per arm
// (e.g. KalmanFactory for the estimator ablation).
func NewBanditWithEstimators(n int, factory EstimatorFactory, priors Priors, rng *rand.Rand) (*Bandit, error) {
	if n <= 0 {
		return nil, fmt.Errorf("learning: bandit needs at least one arm, got %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("learning: nil rng")
	}
	if factory == nil {
		return nil, fmt.Errorf("learning: nil estimator factory")
	}
	b := &Bandit{arms: make([]Arm, n), eff: make([]float64, n), rng: rng, sink: telemetry.Nop{}}
	for i := range b.arms {
		rate, power := priors.Estimate(i)
		if rate <= 0 || power <= 0 {
			return nil, fmt.Errorf("learning: prior for arm %d not positive (rate=%v power=%v)", i, rate, power)
		}
		est, err := factory(rate, power)
		if err != nil {
			return nil, err
		}
		b.arms[i].Estimate = est
		b.eff[i] = est.Efficiency()
	}
	b.best = b.rescan()
	b.bestPulled = -1
	return b, nil
}

// NumArms returns the number of configurations.
func (b *Bandit) NumArms() int { return len(b.arms) }

// SetSink streams estimator updates into a telemetry sink.
func (b *Bandit) SetSink(s telemetry.Sink) { b.sink = telemetry.OrNop(s) }

// Gain returns the filter gain of an arm's estimator, or NaN when the
// estimator does not expose one.
func (b *Bandit) Gain(arm int) float64 {
	if g, ok := b.arms[arm].Estimate.(Gainer); ok {
		return g.Gain()
	}
	return math.NaN()
}

// Observe folds a measurement of (rate, power) for the given arm into its
// estimates and returns the prediction error used by VDBE: the absolute
// difference between the measured efficiency and the pre-update estimate.
func (b *Bandit) Observe(arm int, rate, power float64) (effError float64, err error) {
	if arm < 0 || arm >= len(b.arms) {
		return 0, fmt.Errorf("learning: arm %d out of range [0,%d)", arm, len(b.arms))
	}
	a := &b.arms[arm]
	prior := b.eff[arm]
	var measured float64
	if power > 0 {
		measured = rate / power
	}
	a.Estimate.Observe(rate, power)
	a.Pulls++
	b.totalPulls++

	// Maintain the cached efficiency and the running argmax. Only this
	// arm's score moved, so the champion changes in O(1) — except when
	// the champion itself got worse (or turned NaN), where another arm
	// may now lead and a rescan is required.
	newEff := a.Estimate.Efficiency()
	b.eff[arm] = newEff
	switch {
	case arm == b.best:
		if !(newEff >= prior) {
			b.best = b.rescan()
		}
	case newEff > b.eff[b.best] || (newEff == b.eff[b.best] && arm < b.best):
		b.best = arm
	}
	switch {
	case b.bestPulled < 0:
		if !math.IsNaN(newEff) {
			b.bestPulled = arm
		}
	case arm == b.bestPulled:
		if !(newEff >= prior) {
			b.bestPulled = b.rescanPulled()
		}
	case newEff > b.eff[b.bestPulled] || (newEff == b.eff[b.bestPulled] && arm < b.bestPulled):
		b.bestPulled = arm
	}

	gain := math.NaN()
	if g, ok := a.Estimate.(Gainer); ok {
		gain = g.Gain()
	}
	b.sink.EstimatorUpdate(arm, a.Estimate.Rate(), a.Estimate.Power(), gain)
	return math.Abs(measured - prior), nil
}

// BestArm implements Eqn 3: the arm with the highest estimated energy
// efficiency rate/power. Ties break toward the lower index, which (with our
// index convention) prefers fewer resources. O(1): the argmax is maintained
// incrementally by Observe.
func (b *Bandit) BestArm() int { return b.best }

// rescan recomputes the lowest-index argmax over the cached efficiencies.
func (b *Bandit) rescan() int {
	best := 0
	bestEff := math.Inf(-1)
	for i, eff := range b.eff {
		if eff > bestEff {
			best, bestEff = i, eff
		}
	}
	return best
}

// rescanPulled recomputes the argmax over arms that have observations.
func (b *Bandit) rescanPulled() int {
	best := -1
	bestEff := math.Inf(-1)
	for i, eff := range b.eff {
		if b.arms[i].Pulls > 0 && eff > bestEff {
			best, bestEff = i, eff
		}
	}
	return best
}

// BestMeasuredArm returns the most efficient arm among those with at
// least one observation, or -1 before any pull. Like BestArm it is O(1):
// the watchdog's conservative pin consults it every iteration.
func (b *Bandit) BestMeasuredArm() int { return b.bestPulled }

// BestFeasibleArm returns the most efficient arm among those accepted by
// keep. It returns -1 if keep rejects every arm. The runtime uses this to
// honour caps (e.g. a power cap in approximate-hardware mode).
func (b *Bandit) BestFeasibleArm(keep func(arm int) bool) int {
	best := -1
	bestEff := math.Inf(-1)
	for i, eff := range b.eff {
		if !keep(i) {
			continue
		}
		if eff > bestEff {
			best, bestEff = i, eff
		}
	}
	return best
}

// RandomArm returns a uniformly random arm index.
func (b *Bandit) RandomArm() int { return b.rng.Intn(len(b.arms)) }

// Rate returns the estimated computation rate of an arm.
func (b *Bandit) Rate(arm int) float64 { return b.arms[arm].Estimate.Rate() }

// Power returns the estimated power of an arm.
func (b *Bandit) Power(arm int) float64 { return b.arms[arm].Estimate.Power() }

// Efficiency returns the estimated energy efficiency of an arm.
func (b *Bandit) Efficiency(arm int) float64 { return b.eff[arm] }

// Pulls returns how many observations an arm has absorbed.
func (b *Bandit) Pulls(arm int) int { return b.arms[arm].Pulls }

// TotalPulls returns the number of observations across all arms.
func (b *Bandit) TotalPulls() int { return b.totalPulls }

// Selector is an exploration policy: given the bandit state it picks the
// next arm to run.
type Selector interface {
	// Select returns the next arm and whether the choice was exploratory.
	Select(b *Bandit) (arm int, explored bool)
	// Update feeds back the efficiency prediction error of the last
	// observation (VDBE uses it; others may ignore it).
	Update(effError, measuredEff float64)
}
