package learning

import "math"

// Priors supplies the initial (rate, power) estimate for every bandit arm.
// JouleGuard does not start from random values: Sec. 3.2 initialises
// performance to grow linearly with allocated resources and power to grow
// cubically with clock speed and linearly with core count — a deliberate
// overestimate ("it is not a gross overestimate") that makes unexplored
// richly-provisioned configurations look attractive until measured.
type Priors interface {
	Estimate(arm int) (rate, power float64)
}

// PriorsFunc adapts a function to the Priors interface.
type PriorsFunc func(arm int) (rate, power float64)

// Estimate implements Priors.
func (f PriorsFunc) Estimate(arm int) (rate, power float64) { return f(arm) }

// ResourceShape describes one configuration's resource allocation in the
// normalised terms the prior model needs: how many cores it uses, the clock
// as a fraction of the maximum, and any constant resource bonus factors
// (hyperthreading, extra memory controllers).
type ResourceShape struct {
	Cores       int     // total cores allocated (>= 1)
	ClockFrac   float64 // clock / max clock, in (0, 1]
	ExtraFactor float64 // multiplicative speed factor for other resources (>= 1); 0 means 1
}

// LinearCubicPriors implements the paper's initialisation over a concrete
// configuration space:
//
//	rate(c)  = BaseRate  * cores * clockFrac * extra      (linear in resources)
//	power(c) = BasePower + CorePower * cores * clockFrac^3 (cubic in clock,
//	                                                        linear in cores)
//
// BaseRate is the rate of one core at full clock; BasePower is the
// platform's idle power and CorePower the per-core power at full clock.
type LinearCubicPriors struct {
	Shapes    []ResourceShape
	BaseRate  float64
	BasePower float64
	CorePower float64
}

// Estimate implements Priors.
func (p LinearCubicPriors) Estimate(arm int) (rate, power float64) {
	s := p.Shapes[arm]
	extra := s.ExtraFactor
	if extra <= 0 {
		extra = 1
	}
	cores := float64(s.Cores)
	if cores < 1 {
		cores = 1
	}
	clock := s.ClockFrac
	if clock <= 0 || clock > 1 {
		clock = 1
	}
	rate = p.BaseRate * cores * clock * extra
	power = p.BasePower + p.CorePower*cores*math.Pow(clock, 3)
	return rate, power
}

// FlatPriors gives every arm the same initial estimate; used by the priors
// ablation ("what if we had started from uninformative values?").
type FlatPriors struct {
	Rate  float64
	Power float64
}

// Estimate implements Priors.
func (p FlatPriors) Estimate(arm int) (rate, power float64) { return p.Rate, p.Power }
