package learning

import (
	"math"
	"math/rand"
)

// VDBE implements Value-Difference Based Exploration (Tokic 2010), the
// exploration policy JouleGuard uses for its system-energy optimiser
// (Sec. 3.2, Eqn 2). The exploration probability epsilon grows when the
// model's efficiency predictions are wrong and decays toward zero as they
// become accurate:
//
//	x(t)   = exp(-|alpha * (eff_measured - eff_estimated)| / sigma)
//	rho(t) = (1 - x(t)) / (1 + x(t))
//	eps(t) = 1/|Sys| * rho(t) + (1 - 1/|Sys|) * eps(t-1)
//
// eps(0) = 1, so a fresh system always explores; once the models are
// correct eps decays geometrically and the learner stops disturbing the
// system — the stability property Sec. 3.2 highlights.
type VDBE struct {
	eps    float64
	alpha  float64
	sigma  float64
	invS   float64 // 1/|Sys|
	rng    *rand.Rand
	lastX  float64
	lastRV float64 // last random draw, for observability in tests
}

// VDBEOption configures the VDBE policy.
type VDBEOption func(*VDBE)

// WithSigma sets the inverse sensitivity of the Boltzmann value-difference
// term. The paper divides the weighted value difference by 5.
func WithSigma(sigma float64) VDBEOption {
	return func(v *VDBE) {
		if sigma > 0 {
			v.sigma = sigma
		}
	}
}

// WithInitialEpsilon overrides eps(0) = 1.
func WithInitialEpsilon(eps float64) VDBEOption {
	return func(v *VDBE) { v.eps = clamp01(eps) }
}

// WithUpdateWeight overrides the per-update blending weight (Eqn 2 uses
// 1/|Sys|). On spaces as large as Server's 1024 configurations a literal
// 1/|Sys| keeps eps near 1 for thousands of iterations; JouleGuard's
// runtime caps the time constant so exploration can settle within a run
// (see DESIGN.md).
func WithUpdateWeight(w float64) VDBEOption {
	return func(v *VDBE) {
		if w > 0 && w <= 1 {
			v.invS = w
		}
	}
}

// NewVDBE builds the policy for a configuration space of n arms using the
// EWMA gain alpha (the same alpha as the estimators, per Eqn 2).
func NewVDBE(n int, alpha float64, rng *rand.Rand, opts ...VDBEOption) *VDBE {
	v := &VDBE{eps: 1, alpha: alpha, sigma: 5, invS: 1 / float64(max(n, 1)), rng: rng}
	for _, o := range opts {
		o(v)
	}
	return v
}

// Select draws rand in [0,1): below eps it explores a uniformly random
// configuration, otherwise it exploits the best estimated arm (Eqn 3).
func (v *VDBE) Select(b *Bandit) (int, bool) {
	v.lastRV = v.rng.Float64()
	if v.lastRV < v.eps {
		return b.RandomArm(), true
	}
	return b.BestArm(), false
}

// Update folds the efficiency prediction error of the most recent
// observation into eps per Eqn 2. effError is |measured - estimated|
// efficiency (pre-update estimate); measuredEff is unused by VDBE.
func (v *VDBE) Update(effError, measuredEff float64) {
	if math.IsNaN(effError) || math.IsInf(effError, 0) {
		return
	}
	x := math.Exp(-math.Abs(v.alpha*effError) / v.sigma)
	rho := (1 - x) / (1 + x)
	v.lastX = x
	v.eps = v.invS*rho + (1-v.invS)*v.eps
}

// Epsilon returns the current exploration probability.
func (v *VDBE) Epsilon() float64 { return v.eps }

// FixedEpsilon is the classical epsilon-greedy policy with a constant
// exploration rate; used by the exploration ablation.
type FixedEpsilon struct {
	Eps float64
	rng *rand.Rand
}

// NewFixedEpsilon builds an epsilon-greedy policy.
func NewFixedEpsilon(eps float64, rng *rand.Rand) *FixedEpsilon {
	return &FixedEpsilon{Eps: clamp01(eps), rng: rng}
}

// Select explores with fixed probability Eps.
func (f *FixedEpsilon) Select(b *Bandit) (int, bool) {
	if f.rng.Float64() < f.Eps {
		return b.RandomArm(), true
	}
	return b.BestArm(), false
}

// Update is a no-op for a fixed policy.
func (f *FixedEpsilon) Update(effError, measuredEff float64) {}

// UCB1 is the upper-confidence-bound policy of Auer et al.; included to
// ablate VDBE against a classical bandit algorithm. The confidence bonus
// is scaled by the running mean reward so the policy is unit-free.
type UCB1 struct {
	C       float64 // exploration constant, typically sqrt(2)
	meanEff float64
	n       int
}

// NewUCB1 builds a UCB1 policy with exploration constant c.
func NewUCB1(c float64) *UCB1 {
	if c <= 0 {
		c = math.Sqrt2
	}
	return &UCB1{C: c}
}

// Select picks the arm maximising estimated efficiency plus a confidence
// bonus; unpulled arms are tried first (in index order).
func (u *UCB1) Select(b *Bandit) (int, bool) {
	total := b.TotalPulls()
	for i := 0; i < b.NumArms(); i++ {
		if b.Pulls(i) == 0 {
			return i, true
		}
	}
	scale := u.meanEff
	if scale <= 0 {
		scale = 1
	}
	best, bestV := 0, math.Inf(-1)
	lt := math.Log(float64(max(total, 2)))
	for i := 0; i < b.NumArms(); i++ {
		v := b.Efficiency(i) + scale*u.C*math.Sqrt(lt/float64(b.Pulls(i)))
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best, best != b.BestArm()
}

// Update tracks the running mean efficiency used to scale the bonus.
func (u *UCB1) Update(effError, measuredEff float64) {
	if math.IsNaN(measuredEff) || math.IsInf(measuredEff, 0) {
		return
	}
	u.n++
	u.meanEff += (measuredEff - u.meanEff) / float64(u.n)
}

func clamp01(x float64) float64 {
	switch {
	case math.IsNaN(x), x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
