package learning

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// fakeSystem is a ground truth for bandit tests: arm i has rate i+1 and a
// power curve with an interior efficiency peak.
type fakeSystem struct {
	rates  []float64
	powers []float64
}

func newFakeSystem(n int) *fakeSystem {
	fs := &fakeSystem{rates: make([]float64, n), powers: make([]float64, n)}
	for i := 0; i < n; i++ {
		f := float64(i+1) / float64(n)
		fs.rates[i] = 100 * f
		fs.powers[i] = 10 + 90*f*f*f // cubic: efficiency peaks in the interior
	}
	return fs
}

func (fs *fakeSystem) trueBest() int {
	best, bestEff := 0, 0.0
	for i := range fs.rates {
		if eff := fs.rates[i] / fs.powers[i]; eff > bestEff {
			best, bestEff = i, eff
		}
	}
	return best
}

func optimisticPriors(n int) Priors {
	return PriorsFunc(func(arm int) (float64, float64) {
		f := float64(arm+1) / float64(n)
		return 120 * f, 10 + 50*f // overestimates rate, underestimates power
	})
}

func TestNewBanditValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewBandit(0, 0.85, FlatPriors{1, 1}, rng); err == nil {
		t.Error("want error for zero arms")
	}
	if _, err := NewBandit(3, 0.85, FlatPriors{1, 1}, nil); err == nil {
		t.Error("want error for nil rng")
	}
	if _, err := NewBandit(3, 0.85, FlatPriors{0, 1}, rng); err == nil {
		t.Error("want error for non-positive prior")
	}
	if _, err := NewBandit(3, 2, FlatPriors{1, 1}, rng); err == nil {
		t.Error("want error for alpha out of range")
	}
}

func TestObserveValidatesArm(t *testing.T) {
	b, err := NewBandit(2, 0.85, FlatPriors{1, 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Observe(-1, 1, 1); err == nil {
		t.Error("want error for arm -1")
	}
	if _, err := b.Observe(2, 1, 1); err == nil {
		t.Error("want error for arm out of range")
	}
}

func TestBestArmTracksObservations(t *testing.T) {
	n := 16
	fs := newFakeSystem(n)
	b, err := NewBandit(n, 0.85, optimisticPriors(n), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Feed the truth for every arm several times; BestArm must match the
	// true optimum (Eqn 3).
	for round := 0; round < 30; round++ {
		for i := 0; i < n; i++ {
			if _, err := b.Observe(i, fs.rates[i], fs.powers[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, want := b.BestArm(), fs.trueBest(); got != want {
		t.Fatalf("BestArm = %d, want %d", got, want)
	}
}

func TestBestFeasibleArm(t *testing.T) {
	n := 8
	fs := newFakeSystem(n)
	b, _ := NewBandit(n, 1, FlatPriors{1, 1}, rand.New(rand.NewSource(3)))
	for i := 0; i < n; i++ {
		b.Observe(i, fs.rates[i], fs.powers[i])
	}
	all := b.BestFeasibleArm(func(int) bool { return true })
	if all != b.BestArm() {
		t.Fatalf("unrestricted BestFeasibleArm %d != BestArm %d", all, b.BestArm())
	}
	// Restrict to high-power arms only.
	only7 := b.BestFeasibleArm(func(a int) bool { return a == 7 })
	if only7 != 7 {
		t.Fatalf("restricted arm: %d", only7)
	}
	if got := b.BestFeasibleArm(func(int) bool { return false }); got != -1 {
		t.Fatalf("empty feasible set: got %d, want -1", got)
	}
}

func TestObserveReturnsPredictionError(t *testing.T) {
	b, _ := NewBandit(1, 1, FlatPriors{Rate: 10, Power: 10}, rand.New(rand.NewSource(4)))
	// Prior efficiency 1. Measured efficiency 3 -> error 2.
	e, err := b.Observe(0, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-2) > 1e-12 {
		t.Fatalf("prediction error: got %v, want 2", e)
	}
	// Now the estimate matches (alpha=1), so the next identical observation
	// has zero error.
	e, _ = b.Observe(0, 30, 10)
	if e != 0 {
		t.Fatalf("second error: %v", e)
	}
}

func TestObserveZeroPower(t *testing.T) {
	b, _ := NewBandit(1, 0.85, FlatPriors{1, 1}, rand.New(rand.NewSource(5)))
	if _, err := b.Observe(0, 10, 0); err != nil {
		t.Fatalf("zero power observation should be tolerated: %v", err)
	}
}

func TestPullsAccounting(t *testing.T) {
	b, _ := NewBandit(3, 0.85, FlatPriors{1, 1}, rand.New(rand.NewSource(6)))
	b.Observe(0, 1, 1)
	b.Observe(0, 1, 1)
	b.Observe(2, 1, 1)
	if b.Pulls(0) != 2 || b.Pulls(1) != 0 || b.Pulls(2) != 1 {
		t.Fatalf("pulls: %d %d %d", b.Pulls(0), b.Pulls(1), b.Pulls(2))
	}
	if b.TotalPulls() != 3 {
		t.Fatalf("total pulls: %d", b.TotalPulls())
	}
}

func TestVDBEEpsilonStartsAtOneAndDecays(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := NewVDBE(10, 0.85, rng)
	if v.Epsilon() != 1 {
		t.Fatalf("eps(0) = %v", v.Epsilon())
	}
	// Perfect predictions: eps decays geometrically toward 0.
	for i := 0; i < 400; i++ {
		v.Update(0, 1)
	}
	if v.Epsilon() > 1e-9 {
		t.Fatalf("eps did not decay: %v", v.Epsilon())
	}
}

func TestVDBEEpsilonGrowsOnModelError(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	v := NewVDBE(10, 0.85, rng, WithInitialEpsilon(0))
	for i := 0; i < 50; i++ {
		v.Update(100, 1) // huge persistent prediction error
	}
	if v.Epsilon() < 0.5 {
		t.Fatalf("eps did not grow under model error: %v", v.Epsilon())
	}
}

func TestVDBEEpsilonBounded(t *testing.T) {
	f := func(errs []float64) bool {
		v := NewVDBE(5, 0.85, rand.New(rand.NewSource(9)))
		for _, e := range errs {
			v.Update(e, 1)
			if v.Epsilon() < 0 || v.Epsilon() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVDBESelectExploitsWhenEpsilonZero(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	v := NewVDBE(4, 0.85, rng, WithInitialEpsilon(0))
	b, _ := NewBandit(4, 1, FlatPriors{1, 1}, rng)
	b.Observe(2, 100, 1) // make arm 2 clearly best
	for i := 0; i < 50; i++ {
		arm, explored := v.Select(b)
		if explored || arm != 2 {
			t.Fatalf("iteration %d: arm=%d explored=%v", i, arm, explored)
		}
	}
}

func TestVDBESelectExploresWhenEpsilonOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	v := NewVDBE(4, 0.85, rng) // eps = 1
	b, _ := NewBandit(4, 1, FlatPriors{1, 1}, rng)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		arm, explored := v.Select(b)
		if !explored {
			t.Fatalf("iteration %d did not explore at eps=1", i)
		}
		seen[arm] = true
	}
	if len(seen) != 4 {
		t.Fatalf("exploration did not cover the arms: %v", seen)
	}
}

func TestVDBEIgnoresNonFiniteErrors(t *testing.T) {
	v := NewVDBE(4, 0.85, rand.New(rand.NewSource(12)), WithInitialEpsilon(0.5))
	v.Update(math.NaN(), 1)
	v.Update(math.Inf(1), 1)
	if v.Epsilon() != 0.5 {
		t.Fatalf("eps moved on non-finite error: %v", v.Epsilon())
	}
}

func TestFixedEpsilonPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b, _ := NewBandit(4, 1, FlatPriors{1, 1}, rng)
	b.Observe(1, 100, 1)
	greedy := NewFixedEpsilon(0, rng)
	for i := 0; i < 20; i++ {
		if arm, explored := greedy.Select(b); explored || arm != 1 {
			t.Fatalf("eps=0 policy explored: arm=%d", arm)
		}
	}
	always := NewFixedEpsilon(1, rng)
	var explorations int
	for i := 0; i < 100; i++ {
		if _, explored := always.Select(b); explored {
			explorations++
		}
	}
	if explorations != 100 {
		t.Fatalf("eps=1 policy exploited %d times", 100-explorations)
	}
	if NewFixedEpsilon(5, rng).Eps != 1 || NewFixedEpsilon(-1, rng).Eps != 0 {
		t.Fatal("epsilon not clamped")
	}
}

func TestUCB1TriesEveryArmOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 6
	fs := newFakeSystem(n)
	b, _ := NewBandit(n, 0.85, FlatPriors{1, 1}, rng)
	u := NewUCB1(0)
	for i := 0; i < n; i++ {
		arm, _ := u.Select(b)
		if arm != i {
			t.Fatalf("initial sweep: got arm %d, want %d", arm, i)
		}
		b.Observe(arm, fs.rates[arm], fs.powers[arm])
		u.Update(0, fs.rates[arm]/fs.powers[arm])
	}
}

func TestUCB1ConvergesToBestArm(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 8
	fs := newFakeSystem(n)
	b, _ := NewBandit(n, 0.85, FlatPriors{1, 1}, rng)
	u := NewUCB1(0.1)
	counts := make([]int, n)
	for i := 0; i < 3000; i++ {
		arm, _ := u.Select(b)
		b.Observe(arm, fs.rates[arm], fs.powers[arm])
		u.Update(0, fs.rates[arm]/fs.powers[arm])
		if i >= 2000 {
			counts[arm]++
		}
	}
	best := fs.trueBest()
	if counts[best] < 800 {
		t.Fatalf("UCB1 pulled true best %d only %d/1000 times (counts %v)", best, counts[best], counts)
	}
}

func TestLinearCubicPriors(t *testing.T) {
	p := LinearCubicPriors{
		Shapes: []ResourceShape{
			{Cores: 1, ClockFrac: 0.5},
			{Cores: 4, ClockFrac: 1, ExtraFactor: 1.2},
			{Cores: 0, ClockFrac: -1}, // degenerate, must be sanitised
		},
		BaseRate:  10,
		BasePower: 5,
		CorePower: 20,
	}
	r, w := p.Estimate(0)
	if math.Abs(r-5) > 1e-12 || math.Abs(w-(5+20*0.125)) > 1e-12 {
		t.Fatalf("arm 0: rate=%v power=%v", r, w)
	}
	r, w = p.Estimate(1)
	if math.Abs(r-48) > 1e-12 || math.Abs(w-85) > 1e-12 {
		t.Fatalf("arm 1: rate=%v power=%v", r, w)
	}
	r, w = p.Estimate(2)
	if r <= 0 || w <= 0 {
		t.Fatalf("degenerate shape not sanitised: rate=%v power=%v", r, w)
	}
}

// Property: linear-cubic priors are monotone in cores at fixed clock — more
// resources never look slower a priori, the structural assumption Sec. 3.2
// relies on.
func TestPriorsMonotoneProperty(t *testing.T) {
	f := func(clockRaw float64, coresRaw uint8) bool {
		clock := 0.1 + math.Mod(math.Abs(clockRaw), 0.9)
		if math.IsNaN(clock) {
			return true
		}
		cores := int(coresRaw%15) + 1
		p := LinearCubicPriors{
			Shapes: []ResourceShape{
				{Cores: cores, ClockFrac: clock},
				{Cores: cores + 1, ClockFrac: clock},
			},
			BaseRate: 7, BasePower: 3, CorePower: 11,
		}
		r0, w0 := p.Estimate(0)
		r1, w1 := p.Estimate(1)
		return r1 > r0 && w1 > w0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKalmanBanditConverges(t *testing.T) {
	n := 16
	fs := newFakeSystem(n)
	b, err := NewBanditWithEstimators(n, KalmanFactory(), optimisticPriors(n), rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 40; round++ {
		for i := 0; i < n; i++ {
			b.Observe(i, fs.rates[i], fs.powers[i])
		}
	}
	if got, want := b.BestArm(), fs.trueBest(); got != want {
		t.Fatalf("Kalman bandit best arm %d, want %d", got, want)
	}
	// Estimates must be close to truth after many observations.
	best := fs.trueBest()
	if math.Abs(b.Rate(best)-fs.rates[best])/fs.rates[best] > 0.05 {
		t.Fatalf("Kalman rate estimate %v vs true %v", b.Rate(best), fs.rates[best])
	}
}

func TestNewBanditWithEstimatorsValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	if _, err := NewBanditWithEstimators(3, nil, FlatPriors{1, 1}, rng); err == nil {
		t.Fatal("want error for nil factory")
	}
}

func TestVDBEUpdateWeightOption(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	fast := NewVDBE(1000, 0.85, rng, WithUpdateWeight(0.5))
	slow := NewVDBE(1000, 0.85, rand.New(rand.NewSource(23)))
	for i := 0; i < 10; i++ {
		fast.Update(0, 1)
		slow.Update(0, 1)
	}
	if fast.Epsilon() >= slow.Epsilon() {
		t.Fatalf("weighted VDBE should decay faster: %v vs %v", fast.Epsilon(), slow.Epsilon())
	}
	ignored := NewVDBE(10, 0.85, rng, WithUpdateWeight(-1), WithUpdateWeight(2))
	if ignored.Epsilon() != 1 {
		t.Fatal("invalid weights should be ignored")
	}
}

// Integration-style test: full VDBE + bandit loop on a noisy system finds a
// near-optimal configuration and stops exploring.
func TestVDBEBanditConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 32
	fs := newFakeSystem(n)
	b, err := NewBandit(n, 0.85, optimisticPriors(n), rng)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVDBE(n, 0.85, rng)
	arm := n - 1
	for i := 0; i < 4000; i++ {
		rate := fs.rates[arm] * (1 + 0.02*rng.NormFloat64())
		power := fs.powers[arm] * (1 + 0.02*rng.NormFloat64())
		effErr, err := b.Observe(arm, rate, power)
		if err != nil {
			t.Fatal(err)
		}
		v.Update(effErr, rate/power)
		arm, _ = v.Select(b)
	}
	best := fs.trueBest()
	gotEff := fs.rates[b.BestArm()] / fs.powers[b.BestArm()]
	optEff := fs.rates[best] / fs.powers[best]
	if gotEff < 0.95*optEff {
		t.Fatalf("converged to arm %d (eff %v), optimum %d (eff %v)", b.BestArm(), gotEff, best, optEff)
	}
	if v.Epsilon() > 0.2 {
		t.Fatalf("exploration did not settle: eps=%v", v.Epsilon())
	}
}
