// Cluster protocol: the fleet coordinator (internal/cluster) owns one
// fleet-wide energy budget and delegates it to member daemons through
// expiring leases. Nodes join and heartbeat against the coordinator;
// clients register sessions at the coordinator and are redirected to
// the owning node. All routes are versioned alongside the session
// protocol:
//
//	POST /v1/cluster/join          JoinRequest      -> JoinResponse
//	POST /v1/cluster/heartbeat     HeartbeatRequest -> HeartbeatResponse
//	POST /v1/cluster/lease         ExtendRequest    -> ExtendResponse
//	GET  /v1/cluster               ClusterInfo
//	GET  /v1/cluster/sessions/{key}  PlacementResponse
//	POST /v1/sessions  (coordinator) -> 307 + ErrorResponse{not_owner, Addr}
//	POST /v1/cluster/adopt  (node)  AdoptRequest    -> AdoptResponse
//	GET  /v1/cluster/wal?from=N    write-ahead-log tail (standby replication)
//
// The adopt route is the one coordinator->node call: on failover the
// coordinator pushes a dead node's sessions (registration + iteration
// log) to their new owner, which rebuilds them by replay — the
// cross-node analogue of the snapshot/restore path.
package wire

// ClusterBasePath is the versioned prefix of the cluster routes.
const ClusterBasePath = "/" + Version + "/cluster"

// Stable error codes specific to the cluster protocol.
const (
	// CodeNotOwner redirects a session call to the owning node; the
	// ErrorResponse carries the owner's address in Addr.
	CodeNotOwner = "not_owner"
	// CodeNoNodes defers a placement because no live node can take the
	// session yet (retryable: nodes may join or failover may finish).
	CodeNoNodes = "no_nodes"
	// CodeUnknownNode rejects a heartbeat from a node the coordinator
	// does not recognise (expired lease or stale epoch); the node must
	// rejoin and reconcile.
	CodeUnknownNode = "unknown_node"
	// CodeLeaseExpired rejects work on a node whose budget lease lapsed
	// (self-fencing); retryable — the node renews or failover takes over.
	CodeLeaseExpired = "lease_expired"
	// CodeStaleEpoch rejects a message across a coordinator failover: the
	// sender (a deposed primary, or a peer still talking to one) carries a
	// fencing epoch older than the receiver's. The cure is to re-join the
	// coordinator holding the highest fence; grants carrying a stale fence
	// must be dropped, never applied.
	CodeStaleEpoch = "stale_epoch"
	// CodeNotPrimary rejects control-plane calls on a standby coordinator
	// that has not (yet) promoted; retryable against the next coordinator
	// in the caller's ordered list.
	CodeNotPrimary = "not_primary"
)

// IterRec is one completed iteration exactly as the controller consumed
// it: the client's clocks, its cumulative meter reading and the reported
// accuracy. It is the unit of the daemon snapshot, of heartbeat session
// reports, and of cross-node adoption — replaying a log of IterRecs
// through a fresh governor lands on bit-identical state.
type IterRec struct {
	NextNow   float64 `json:"next_now"`
	DoneNow   float64 `json:"done_now"`
	EnergyJ   float64 `json:"energy_j"`
	EnergyErr bool    `json:"energy_err,omitempty"`
	Accuracy  float64 `json:"accuracy"`
}

// JoinRequest enrolls (or re-enrolls) a node into the fleet. A rejoining
// node reports its cumulative consumed joules so the coordinator can
// reconcile the pessimistic escrow it booked when the lease expired.
type JoinRequest struct {
	// Node is the stable node name (survives restarts of the process).
	Node string `json:"node"`
	// Addr is the node's advertised base URL (clients are redirected to
	// it; the coordinator pushes adoptions to it).
	Addr string `json:"addr"`
	// ConsumedJ is the node's cumulative energy spend across its
	// lifetime (0 for a fresh incarnation that lost its meter).
	ConsumedJ float64 `json:"consumed_j"`
	// HeldKeys lists the session keys the node currently owns, so the
	// coordinator can tell it which were reassigned while it was away.
	HeldKeys []string `json:"held_keys,omitempty"`
	// Fence is the highest coordinator fencing epoch the node has seen.
	// A coordinator receiving a higher fence than its own has been
	// deposed by a promoted standby and must step down.
	Fence int64 `json:"fence,omitempty"`
}

// JoinResponse acknowledges membership and issues the budget lease.
type JoinResponse struct {
	// Epoch identifies this enrollment; heartbeats must echo it.
	Epoch int64 `json:"epoch"`
	// LeaseJ is the node's cumulative budget lease in joules: the node's
	// broker may let its sessions spend up to LeaseJ total. It only
	// grows; consumption is reported back through heartbeats.
	LeaseJ float64 `json:"lease_j"`
	// TTLMS is the lease term: a node that cannot renew within it must
	// fence itself (stop arming iterations), and the coordinator
	// reclaims the unspent lease after it.
	TTLMS int64 `json:"ttl_ms"`
	// HeartbeatMS is the renewal cadence the coordinator suggests.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// Drop lists session keys the node held that were reassigned to
	// other nodes while it was partitioned; it must discard them.
	Drop []string `json:"drop,omitempty"`
	// Fence is the coordinator's fencing epoch, bumped on every standby
	// promotion. Members record the highest fence they have seen and
	// reject any grant carrying a lower one (a deposed primary).
	Fence int64 `json:"fence,omitempty"`
}

// SessionReport is one session's incremental state in a heartbeat: the
// coordinator appends NewIters to its copy of the log, which is what
// failover restores from.
type SessionReport struct {
	ID        string          `json:"id"`
	Key       string          `json:"key"`
	Reg       RegisterRequest `json:"reg"`
	GrantJ    float64         `json:"grant_j"`
	ImportedJ float64         `json:"imported_j,omitempty"`
	SpentJ    float64         `json:"spent_j"`
	Done      int             `json:"done"`
	Complete  bool            `json:"complete,omitempty"`
	// From is the index NewIters starts at (the node's view of what the
	// coordinator has acked); the coordinator replies with its own log
	// length per session so the two re-sync automatically.
	From     int       `json:"from"`
	NewIters []IterRec `json:"new_iters,omitempty"`
}

// TraceRef forwards one sampled trace context from a member to the
// coordinator on a heartbeat, so the coordinator can record its
// lease-mutation span into the same distributed trace. NowS is the
// member's clock when the traced iteration settled.
type TraceRef struct {
	Trace   uint64  `json:"trace"`
	Span    uint64  `json:"span"`
	Session string  `json:"session,omitempty"`
	Iter    int     `json:"iter"`
	NowS    float64 `json:"now_s"`
}

// MetricSummary ships a member's cumulative telemetry counters on its
// heartbeats — the rollup's input. Values are cumulative (resets are
// detected by the coordinator when a value shrinks); shipping on the
// existing heartbeat means the coordinator never scrapes members.
type MetricSummary struct {
	Decisions          float64 `json:"decisions"`
	Iterations         float64 `json:"iterations"`
	GuardRejected      float64 `json:"guard_rejected"`
	WatchdogTrips      float64 `json:"watchdog_trips"`
	FaultsInjected     float64 `json:"faults_injected"`
	DecisionSecondsSum float64 `json:"decision_seconds_sum"`
	DecisionCount      float64 `json:"decision_count"`
}

// HeartbeatRequest renews the lease and reports consumption.
type HeartbeatRequest struct {
	Node  string `json:"node"`
	Epoch int64  `json:"epoch"`
	// ConsumedJ is the node's cumulative spend; the coordinator books
	// the delta against the lease.
	ConsumedJ float64         `json:"consumed_j"`
	Sessions  []SessionReport `json:"sessions,omitempty"`
	// Closed lists node-local session ids torn down since the last
	// heartbeat; the coordinator drops their placement records.
	Closed []string `json:"closed,omitempty"`
	// Fence is the highest fencing epoch the node has seen (see
	// JoinRequest.Fence).
	Fence int64 `json:"fence,omitempty"`
	// Traces carries the trace contexts of sampled iterations settled
	// since the last heartbeat (bounded member-side); the coordinator
	// records its lease-booking span under each.
	Traces []TraceRef `json:"traces,omitempty"`
	// Metrics is the node's cumulative telemetry summary for the
	// cluster-level rollup.
	Metrics *MetricSummary `json:"metrics,omitempty"`
	// Tenants reports the node's local QoS ladder verdicts so the
	// coordinator can merge them into fleet-wide tenant policy.
	Tenants []TenantPolicy `json:"tenants,omitempty"`
}

// TenantPolicy is one tenant's QoS standing — shipped node->coordinator
// on heartbeats (the node's local ladder verdict) and coordinator->node
// in the response (the fleet-wide merge, maximum escalation wins). A
// tenant throttled on one node is therefore throttled everywhere: it
// cannot escape enforcement by re-placing its sessions on another node.
type TenantPolicy struct {
	Tenant string `json:"tenant"`
	// Tier is the tenant's QoS class ("guaranteed" | "standard" |
	// "best-effort").
	Tier string `json:"tier"`
	// State is the ladder rung ("ok" | "throttled" | "degraded" |
	// "suspended" | "killed").
	State string `json:"state"`
	// FloorScale is the accuracy-floor degradation multiplier in force
	// (1 = undegraded; only meaningful at the degraded rung and above).
	FloorScale float64 `json:"floor_scale,omitempty"`
}

// HeartbeatResponse extends the lease and acks the session logs.
type HeartbeatResponse struct {
	LeaseJ float64 `json:"lease_j"`
	TTLMS  int64   `json:"ttl_ms"`
	// Acked maps node-local session ids to the coordinator's stored log
	// length; the node sends iterations from that index next time.
	Acked map[string]int `json:"acked,omitempty"`
	// Fence is the coordinator's fencing epoch (see JoinResponse.Fence).
	Fence int64 `json:"fence,omitempty"`
	// Policies is the fleet-wide tenant policy merge: for every tenant
	// any node has escalated, the maximum escalation currently in force.
	// Members overlay these onto their local ladders as a remote floor.
	Policies []TenantPolicy `json:"policies,omitempty"`
}

// ExtendRequest asks for an on-demand lease extension, typically to
// admit a registration the node's current lease cannot cover.
type ExtendRequest struct {
	Node  string  `json:"node"`
	Epoch int64   `json:"epoch"`
	NeedJ float64 `json:"need_j"`
	// Fence is the highest fencing epoch the node has seen.
	Fence int64 `json:"fence,omitempty"`
	// TraceID/SpanID propagate the trace context when the extension was
	// triggered by a traced admission (0 = untraced).
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id,omitempty"`
}

// ExtendResponse reports the (possibly partial) extension.
type ExtendResponse struct {
	LeaseJ   float64 `json:"lease_j"`
	GrantedJ float64 `json:"granted_j"`
	// Fence is the coordinator's fencing epoch; a member must drop the
	// extension if it is older than the highest fence it has seen.
	Fence int64 `json:"fence,omitempty"`
}

// AdoptSession is one migrated session: everything the new owner needs
// to rebuild it by replay and re-admit its remaining grant.
type AdoptSession struct {
	Key    string          `json:"key"`
	Reg    RegisterRequest `json:"reg"`
	GrantJ float64         `json:"grant_j"`
	SpentJ float64         `json:"spent_j"`
	Log    []IterRec       `json:"log,omitempty"`
}

// AdoptRequest is the coordinator's failover push to a session's new
// owner node.
type AdoptRequest struct {
	Sessions []AdoptSession `json:"sessions"`
	// Fence is the pushing coordinator's fencing epoch; a node that has
	// seen a higher one rejects the push (stale_epoch) — a deposed
	// primary must not be able to seed sessions.
	Fence int64 `json:"fence,omitempty"`
	// TraceID/SpanID propagate the trace context of the failover that
	// triggered the push (0 = untraced).
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id,omitempty"`
}

// AdoptResponse maps session keys to the new owner's local session ids.
type AdoptResponse struct {
	IDs map[string]string `json:"ids"`
}

// PlacementResponse answers "which node owns session key K".
type PlacementResponse struct {
	Key       string `json:"key"`
	Node      string `json:"node"`
	Addr      string `json:"addr"`
	SessionID string `json:"session_id,omitempty"`
	// Fence is the answering coordinator's fencing epoch; clients keep
	// the highest fence seen and discard placements from older ones.
	Fence int64 `json:"fence,omitempty"`
}

// NodeInfo is the coordinator's view of one member.
type NodeInfo struct {
	Node     string  `json:"node"`
	Addr     string  `json:"addr"`
	Epoch    int64   `json:"epoch"`
	Live     bool    `json:"live"`
	LeaseJ   float64 `json:"lease_j"`
	AckedJ   float64 `json:"acked_j"`
	UnspentJ float64 `json:"unspent_j"`
	EscrowJ  float64 `json:"escrow_j,omitempty"`
	Sessions int     `json:"sessions"`
	// Fidelity is acked spend over cumulative lease — how much of the
	// delegated budget the node has actually turned into work.
	Fidelity float64 `json:"fidelity"`
}

// ClusterInfo is the coordinator's introspection view: the fleet ledger
// plus every node and placement.
type ClusterInfo struct {
	FleetJ float64 `json:"fleet_j"`
	// Fence is the coordinator's fencing epoch; Role is "primary",
	// "standby" or "deposed".
	Fence int64  `json:"fence"`
	Role  string `json:"role,omitempty"`
	// ReserveJ is the slice of the pool held back from steady-state
	// leasing so failover adoptions can always be funded.
	ReserveJ float64 `json:"reserve_j"`
	// ConsumedJ is all booked consumption, including pessimistic escrow
	// for expired leases awaiting reconciliation.
	ConsumedJ float64 `json:"consumed_j"`
	// LeasedUnspentJ is the sum of live nodes' unspent leases. The
	// safety invariant, checked after every ledger mutation:
	// LeasedUnspentJ + ConsumedJ <= FleetJ.
	LeasedUnspentJ float64 `json:"leased_unspent_j"`
	PoolJ          float64 `json:"pool_j"`
	// InvariantViolations counts failed ledger self-checks (always 0
	// unless the lease arithmetic is broken; tests assert on it).
	InvariantViolations int             `json:"invariant_violations"`
	NodesLive           int             `json:"nodes_live"`
	Reassignments       int             `json:"reassignments"`
	Nodes               []NodeInfo      `json:"nodes,omitempty"`
	Sessions            []PlacementInfo `json:"sessions,omitempty"`
}

// PlacementInfo is one session's fleet-level record.
type PlacementInfo struct {
	Key      string  `json:"key"`
	Node     string  `json:"node"`
	ID       string  `json:"id,omitempty"`
	Done     int     `json:"done"`
	GrantJ   float64 `json:"grant_j"`
	SpentJ   float64 `json:"spent_j"`
	Complete bool    `json:"complete,omitempty"`
}
