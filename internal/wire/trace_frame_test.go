package wire

import (
	"bytes"
	"io"
	"testing"
)

// TestTracedFrameRoundTrip pins the FlagTraced extension: a nonzero
// TraceID rides a 16-byte trailing extension on TNext/TDone/TDoneNext
// and decodes back exactly; the batched pair shares one extension that
// lands on both halves.
func TestTracedFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)

	next := NextRequest{NowS: 1.5, TraceID: 0xdeadbeefcafef00d, SpanID: 0x0123456789abcdef}
	done := DoneRequest{NowS: 2.5, EnergyJ: 7.25, Accuracy: 0.5,
		TraceID: 0xfeedfacefeedface, SpanID: 42}

	if err := enc.Next(9, &next); err != nil {
		t.Fatal(err)
	}
	if err := enc.Done(9, &done); err != nil {
		t.Fatal(err)
	}
	if err := enc.DoneNext(9, &done, &next); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(&buf)

	h, p, err := dec.ReadFrame()
	if err != nil || h.Type != TNext {
		t.Fatalf("frame 1: hdr %+v err %v", h, err)
	}
	if h.Flags&FlagTraced == 0 || int(h.Len) != 8+TraceExtLen {
		t.Fatalf("traced TNext hdr %+v: want FlagTraced and base+%d payload", h, TraceExtLen)
	}
	if got, err := ParseNext(h, p); err != nil || got != next {
		t.Fatalf("ParseNext: %+v %v", got, err)
	}

	h, p, err = dec.ReadFrame()
	if err != nil || h.Type != TDone || h.Flags&FlagTraced == 0 {
		t.Fatalf("frame 2: hdr %+v err %v", h, err)
	}
	if got, err := ParseDone(h, p); err != nil || got != done {
		t.Fatalf("ParseDone: %+v %v", got, err)
	}

	h, p, err = dec.ReadFrame()
	if err != nil || h.Type != TDoneNext || h.Flags&FlagTraced == 0 {
		t.Fatalf("frame 3: hdr %+v err %v", h, err)
	}
	gd, gn, err := ParseDoneNext(h, p)
	if err != nil {
		t.Fatal(err)
	}
	if gd != done {
		t.Fatalf("ParseDoneNext done half: %+v", gd)
	}
	// The pair shares done's extension: the next half carries the same
	// context regardless of what the encoder was handed for it.
	wantNext := next
	wantNext.TraceID, wantNext.SpanID = done.TraceID, done.SpanID
	if gn != wantNext {
		t.Fatalf("ParseDoneNext next half: %+v want %+v", gn, wantNext)
	}
}

// TestUntracedFramesMatchOldFormat pins backward interop: a zero
// TraceID encodes exactly the pre-trace frame — base payload length, no
// FlagTraced — so an old peer decodes it unchanged, and decoding one
// yields a zero trace context.
func TestUntracedFramesMatchOldFormat(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Next(3, &NextRequest{NowS: 4.5}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if len(raw) != HeaderLen+8 {
		t.Fatalf("untraced TNext is %d bytes on the wire, want %d", len(raw), HeaderLen+8)
	}
	if raw[3]&FlagTraced != 0 {
		t.Fatalf("untraced TNext sets FlagTraced")
	}
	dec := NewDecoder(&buf)
	h, p, err := dec.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseNext(h, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 0 || got.SpanID != 0 {
		t.Fatalf("untraced frame decoded a trace context: %+v", got)
	}
}

// TestTracedFlagLengthMismatchRejected pins the length discipline: the
// flag and the extension must agree, in both directions.
func TestTracedFlagLengthMismatchRejected(t *testing.T) {
	// Traced payload with the flag stripped: the 16 extra bytes no longer
	// match TNext's base length.
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Next(1, &NextRequest{NowS: 1, TraceID: 7, SpanID: 8}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[3] &^= FlagTraced
	h, p, err := NewDecoder(bytes.NewReader(raw)).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if _, perr := ParseNext(h, p); perr == nil {
		t.Fatal("flag-stripped traced frame parsed")
	}

	// Base-length payload with the flag forced on: the promised extension
	// is missing.
	buf.Reset()
	enc = NewEncoder(&buf)
	if err := enc.Next(1, &NextRequest{NowS: 1}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	raw = buf.Bytes()
	raw[3] |= FlagTraced
	h, p, err = NewDecoder(bytes.NewReader(raw)).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if _, perr := ParseNext(h, p); perr == nil {
		t.Fatal("flag-forced base-length frame parsed")
	}
	if _, _, err := NewDecoder(bytes.NewReader(nil)).ReadFrame(); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
}
