// Package wire defines the versioned JSON-over-HTTP protocol spoken
// between the governor daemon (cmd/jouleguardd, internal/server) and its
// clients (internal/client). The protocol mirrors the in-process
// OnlineController contract — Next fetches the configurations for the
// upcoming iteration, Done reports its measurements — with session
// registration and teardown around it:
//
//	POST   /v1/sessions          RegisterRequest  -> RegisterResponse
//	GET    /v1/sessions          ListResponse (all sessions + broker state)
//	GET    /v1/sessions/{id}     SessionInfo (introspection)
//	POST   /v1/sessions/{id}/next  NextRequest  -> NextResponse
//	POST   /v1/sessions/{id}/done  DoneRequest  -> DoneResponse
//	DELETE /v1/sessions/{id}     CloseResponse (budget reclaimed)
//
// Every error body is an ErrorResponse carrying a stable machine-readable
// Code alongside the human-readable message; clients branch on the code,
// never on the message text. The package is shared by the server and the
// client so the two cannot drift; it depends on nothing but the stdlib.
package wire

// Version is the protocol version; it is the literal "v1" path segment.
const Version = "v1"

// BasePath is the versioned path prefix every route lives under.
const BasePath = "/" + Version + "/sessions"

// Stable error codes carried in ErrorResponse.Code.
const (
	// CodeBudgetExhausted rejects a registration the broker's remaining
	// global budget cannot honor (admission control).
	CodeBudgetExhausted = "budget_exhausted"
	// CodeUnknownSession names a session id the daemon does not know.
	CodeUnknownSession = "unknown_session"
	// CodeBadSequence flags an out-of-order wire call: Done without a
	// pending Next, or Next while one is already outstanding.
	CodeBadSequence = "bad_sequence"
	// CodeSessionClosed flags a call on a session already closed by the
	// client or expired by the idle watchdog.
	CodeSessionClosed = "session_closed"
	// CodeSessionComplete flags Next on a session whose configured
	// workload has already completed; close it to reclaim the budget.
	CodeSessionComplete = "session_complete"
	// CodeDraining rejects work while the daemon shuts down; the call is
	// safe to retry against the restarted daemon.
	CodeDraining = "draining"
	// CodeBadRequest covers malformed bodies and invalid parameters.
	CodeBadRequest = "bad_request"
	// CodeTenantThrottled (429) paces a tenant the QoS ladder has
	// throttled: the decision is still coming, just not at the rate the
	// tenant is asking for. Clients back off and retry the same call.
	CodeTenantThrottled = "tenant_throttled"
	// CodeTenantSuspended (503) rejects a new registration while the
	// tenant sits at the suspend rung of the ladder; existing sessions
	// keep running (degraded). Retry after the tenant de-escalates.
	CodeTenantSuspended = "tenant_suspended"
	// CodeTenantShed (503) marks a session killed by overload shedding
	// or the ladder's final rung; its grant was reclaimed for the pool.
	// Fleet clients may re-place elsewhere, subject to fleet-wide policy.
	CodeTenantShed = "tenant_shed"
)

// ErrorResponse is the body of every non-2xx reply. Addr is set only on
// CodeNotOwner redirects: the base URL of the node that owns the session.
type ErrorResponse struct {
	Code  string `json:"code"`
	Error string `json:"error"`
	Addr  string `json:"addr,omitempty"`
}

// RegisterRequest opens a session: one tenant-side control loop governed
// remotely. Exactly one of Factor or BudgetJ may be set; when both are
// zero the broker grants a weighted share of its uncommitted budget.
type RegisterRequest struct {
	// Tenant names the budget-ledger account: the broker's deficit
	// carry-over persists per tenant across that tenant's sessions.
	Tenant string `json:"tenant"`
	// Key is an optional client-chosen stable session identity. In a
	// fleet it drives placement (rendezvous hashing) and failover: a
	// register carrying the key of a live session attaches to it
	// (Resumed in the response) instead of opening a new one.
	Key string `json:"key,omitempty"`
	// Weight scales the tenant's share when the broker apportions budget
	// (<= 0 means 1).
	Weight float64 `json:"weight,omitempty"`
	// App and Platform select the calibrated testbed the session's
	// governor reasons with (apps.Names x platform.Names, or a profile
	// registered server-side).
	App      string `json:"app"`
	Platform string `json:"platform"`
	// Iterations is the session's workload W (Algorithm 1).
	Iterations int `json:"iterations"`
	// Factor asks for iterations x defaultEnergy / Factor joules (the
	// paper's energy-reduction methodology, Sec. 5.2).
	Factor float64 `json:"factor,omitempty"`
	// BudgetJ asks for an absolute grant in joules.
	BudgetJ float64 `json:"budget_j,omitempty"`
	// MinAccuracy is the tenant's accuracy goal; the daemon records it
	// and reports attainment in SessionInfo (the governor maximises
	// accuracy subject to the energy budget regardless).
	MinAccuracy float64 `json:"min_accuracy,omitempty"`
	// Seed fixes the governor's exploration seed (0 = testbed default),
	// making the session's decision sequence reproducible.
	Seed int64 `json:"seed,omitempty"`
	// IdleTimeoutS overrides the daemon's default idle expiry for this
	// session (0 = daemon default).
	IdleTimeoutS float64 `json:"idle_timeout_s,omitempty"`
	// Tier names the tenant's QoS class: "guaranteed", "standard"
	// (default when empty), or "best-effort". The tier fixes the latency
	// SLO and accuracy floor the qos engine defends for the tenant, and
	// the order overload shedding sacrifices tenants in.
	Tier string `json:"tier,omitempty"`
}

// RegisterResponse acknowledges an admitted session.
type RegisterResponse struct {
	SessionID string `json:"session_id"`
	// SessionNum is the session's numeric id, used in v2 binary frame
	// headers (0 = the daemon does not serve this session over v2).
	SessionNum uint32 `json:"session_num,omitempty"`
	// GrantJ is the joule budget the broker committed to this session;
	// the session's governor enforces it.
	GrantJ     float64 `json:"grant_j"`
	Iterations int     `json:"iterations"`
	// AppConfigs and SysConfigs size the configuration spaces so the
	// client can validate its actuators.
	AppConfigs int `json:"app_configs"`
	SysConfigs int `json:"sys_configs"`
	// Resumed marks an attach to an existing session (matched by Key,
	// e.g. after failover restored it on a new node); IterationsDone is
	// how far that session already got, so the client can catch up.
	Resumed        bool `json:"resumed,omitempty"`
	IterationsDone int  `json:"iterations_done,omitempty"`
}

// NextRequest fetches the configurations for the upcoming iteration.
// NowS is the client's monotone clock in seconds; the daemon timestamps
// the iteration with the client's clock, never its own, so network and
// scheduling delay cannot pollute the interval accounting.
type NextRequest struct {
	NowS float64 `json:"now_s"`
	// TraceID/SpanID carry the distributed-trace context when this
	// iteration was head-sampled by the client (0 = untraced, the
	// overwhelmingly common case). SpanID is the client-side root span
	// this hop's daemon spans parent to. Over v2 the pair rides a
	// FlagTraced trailing extension instead of these fields.
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id,omitempty"`
}

// NextResponse carries the decision.
type NextResponse struct {
	Iter      int `json:"iter"`
	AppConfig int `json:"app_config"`
	SysConfig int `json:"sys_config"`
}

// DoneRequest reports a completed iteration: the client's clock, its
// cumulative energy-meter reading, and the application's own accuracy
// measure. EnergyErr marks a failed meter read; the daemon's hardened
// sensing guard substitutes a model-based estimate, exactly as the
// in-process OnlineController would.
type DoneRequest struct {
	NowS      float64 `json:"now_s"`
	EnergyJ   float64 `json:"energy_j"`
	EnergyErr bool    `json:"energy_err,omitempty"`
	Accuracy  float64 `json:"accuracy"`
	// TraceID/SpanID carry the distributed-trace context for a
	// head-sampled iteration (0 = untraced); see NextRequest.
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id,omitempty"`
}

// DoneResponse acknowledges the observation and reports the ledger.
type DoneResponse struct {
	IterationsDone  int     `json:"iterations_done"`
	SpentJ          float64 `json:"spent_j"`
	GrantRemainingJ float64 `json:"grant_remaining_j"`
	Degraded        bool    `json:"degraded"`
	Infeasible      bool    `json:"infeasible"`
	Complete        bool    `json:"complete"`
}

// CloseResponse acknowledges teardown and settles the ledger.
type CloseResponse struct {
	SessionID  string  `json:"session_id"`
	SpentJ     float64 `json:"spent_j"`
	ReclaimedJ float64 `json:"reclaimed_j"`
}

// SessionInfo is the introspection view of one session.
type SessionInfo struct {
	SessionID   string  `json:"session_id"`
	Tenant      string  `json:"tenant"`
	Weight      float64 `json:"weight"`
	App         string  `json:"app"`
	Platform    string  `json:"platform"`
	State       string  `json:"state"` // idle | armed | complete | closed | expired
	Iterations  int     `json:"iterations"`
	IterDone    int     `json:"iterations_done"`
	GrantJ      float64 `json:"grant_j"`
	SpentJ      float64 `json:"spent_j"`
	MinAccuracy float64 `json:"min_accuracy,omitempty"`
	MeanAcc     float64 `json:"mean_accuracy"`
	Degraded    bool    `json:"degraded"`
	Infeasible  bool    `json:"infeasible"`
	// Estimates exposes the governor's learned per-arm bandit state, the
	// introspection the snapshot/restore tests pin bit-identically.
	Estimates []ArmEstimate `json:"estimates,omitempty"`
	// Tier and QoSState expose the tenant's QoS class and current ladder
	// rung (ok | throttled | degraded | suspended | killed) as the qos
	// engine sees them at introspection time.
	Tier     string `json:"tier,omitempty"`
	QoSState string `json:"qos_state,omitempty"`
	// FloorScale is the degradation multiplier the ladder currently
	// applies to the tenant's accuracy floor (1 = undegraded).
	FloorScale float64 `json:"floor_scale,omitempty"`
}

// ArmEstimate is one system configuration's learned model.
type ArmEstimate struct {
	Arm   int     `json:"arm"`
	Rate  float64 `json:"rate"`
	Power float64 `json:"power"`
	Pulls int     `json:"pulls"`
}

// BrokerInfo is the broker's ledger view.
type BrokerInfo struct {
	GlobalJ    float64 `json:"global_j"`
	CommittedJ float64 `json:"committed_j"`
	ConsumedJ  float64 `json:"consumed_j"`
	AvailableJ float64 `json:"available_j"`
	Active     int     `json:"active_sessions"`
	Admitted   int     `json:"admitted_total"`
	Rejected   int     `json:"rejected_total"`
}

// ListResponse enumerates the daemon's sessions plus the broker ledger.
type ListResponse struct {
	Broker   BrokerInfo    `json:"broker"`
	Sessions []SessionInfo `json:"sessions"`
}
