package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)

	next := NextRequest{NowS: 12.375}
	nextResp := NextResponse{Iter: 7, AppConfig: 3, SysConfig: 11}
	done := DoneRequest{NowS: 13.5, EnergyJ: 101.25, Accuracy: 0.875, EnergyErr: true}
	doneResp := DoneResponse{IterationsDone: 7, SpentJ: 55.5, GrantRemainingJ: 44.5,
		Degraded: true, Infeasible: false, Complete: true}

	if err := enc.Next(42, &next); err != nil {
		t.Fatal(err)
	}
	if err := enc.NextResp(42, nextResp); err != nil {
		t.Fatal(err)
	}
	if err := enc.Done(43, &done); err != nil {
		t.Fatal(err)
	}
	if err := enc.DoneResp(43, doneResp); err != nil {
		t.Fatal(err)
	}
	if err := enc.DoneNext(44, &done, &next); err != nil {
		t.Fatal(err)
	}
	if err := enc.DoneNextResp(44, doneResp, nextResp); err != nil {
		t.Fatal(err)
	}
	if err := enc.Err(45, CodeSessionComplete, "workload complete"); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(&buf)

	h, p, err := dec.ReadFrame()
	if err != nil || h.Type != TNext || h.Session != 42 {
		t.Fatalf("frame 1: hdr %+v err %v", h, err)
	}
	if got, err := ParseNext(h, p); err != nil || got != next {
		t.Fatalf("ParseNext: %+v %v", got, err)
	}

	h, p, err = dec.ReadFrame()
	if err != nil || h.Type != TNextResp {
		t.Fatalf("frame 2: hdr %+v err %v", h, err)
	}
	if got, err := ParseNextResp(h, p); err != nil || got != nextResp {
		t.Fatalf("ParseNextResp: %+v %v", got, err)
	}

	h, p, err = dec.ReadFrame()
	if err != nil || h.Type != TDone || h.Session != 43 {
		t.Fatalf("frame 3: hdr %+v err %v", h, err)
	}
	if got, err := ParseDone(h, p); err != nil || got != done {
		t.Fatalf("ParseDone: %+v %v", got, err)
	}

	h, p, err = dec.ReadFrame()
	if err != nil || h.Type != TDoneResp {
		t.Fatalf("frame 4: hdr %+v err %v", h, err)
	}
	if got, err := ParseDoneResp(h, p); err != nil || got != doneResp {
		t.Fatalf("ParseDoneResp: %+v %v", got, err)
	}

	h, p, err = dec.ReadFrame()
	if err != nil || h.Type != TDoneNext || h.Session != 44 {
		t.Fatalf("frame 5: hdr %+v err %v", h, err)
	}
	if gd, gn, err := ParseDoneNext(h, p); err != nil || gd != done || gn != next {
		t.Fatalf("ParseDoneNext: %+v %+v %v", gd, gn, err)
	}

	h, p, err = dec.ReadFrame()
	if err != nil || h.Type != TDoneNextResp {
		t.Fatalf("frame 6: hdr %+v err %v", h, err)
	}
	if gd, gn, err := ParseDoneNextResp(h, p); err != nil || gd != doneResp || gn != nextResp {
		t.Fatalf("ParseDoneNextResp: %+v %+v %v", gd, gn, err)
	}

	h, p, err = dec.ReadFrame()
	if err != nil || h.Type != TErr || h.Session != 45 {
		t.Fatalf("frame 7: hdr %+v err %v", h, err)
	}
	code, msg, err := ParseErr(h, p)
	if err != nil || code != CodeSessionComplete || msg != "workload complete" {
		t.Fatalf("ParseErr: %q %q %v", code, msg, err)
	}

	if _, _, err := dec.ReadFrame(); err != io.EOF {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}

func TestFrameRejectsBadMagic(t *testing.T) {
	raw := make([]byte, HeaderLen)
	raw[0], raw[1] = 0xde, 0xad
	dec := NewDecoder(bytes.NewReader(raw))
	if _, _, err := dec.ReadFrame(); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want bad-magic error, got %v", err)
	}
}

func TestFrameRejectsOversizedPayload(t *testing.T) {
	raw := make([]byte, HeaderLen)
	binary.LittleEndian.PutUint16(raw[0:2], MagicV2)
	raw[2] = TErr
	binary.LittleEndian.PutUint32(raw[8:12], MaxFramePayload+1)
	dec := NewDecoder(bytes.NewReader(raw))
	if _, _, err := dec.ReadFrame(); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("want payload-cap error, got %v", err)
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Next(1, &NextRequest{NowS: 1}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		dec := NewDecoder(bytes.NewReader(raw[:len(raw)-cut]))
		if _, _, err := dec.ReadFrame(); err == nil {
			t.Fatalf("cut %d bytes: decode unexpectedly succeeded", cut)
		}
	}
}

func TestFrameWrongLengthForType(t *testing.T) {
	// A TNext header claiming a Done-sized payload must fail the parse,
	// not read garbage.
	h := Hdr{Type: TNext, Len: doneLen}
	if _, err := ParseNext(h, make([]byte, doneLen)); err == nil {
		t.Fatal("ParseNext accepted a mis-sized payload")
	}
	if _, err := ParseDoneResp(Hdr{Type: TDoneResp, Len: 3}, make([]byte, 3)); err == nil {
		t.Fatal("ParseDoneResp accepted a mis-sized payload")
	}
}

// TestEnforcementCodesFrameRoundTrip pins the QoS enforcement codes'
// v2 rendering end to end: each code crosses a real encode/decode as a
// TErr frame and comes back as itself, and the byte assignments are
// frozen (changing one would silently remap errors for every deployed
// v2 client).
func TestEnforcementCodesFrameRoundTrip(t *testing.T) {
	cases := []struct {
		code string
		b    byte
		msg  string
	}{
		{CodeTenantThrottled, 10, "tenant noisy is throttled; decisions paced to the standard SLO"},
		{CodeTenantSuspended, 11, "tenant noisy is suspended; new registrations refused until it de-escalates"},
		{CodeTenantShed, 12, "tenant noisy was shed; its sessions are killed until it de-escalates"},
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for i, c := range cases {
		if got := ErrCodeByte(c.code); got != c.b {
			t.Errorf("ErrCodeByte(%q) = %d, want %d", c.code, got, c.b)
		}
		if err := enc.Err(uint32(100+i), c.code, c.msg); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(bytes.NewReader(buf.Bytes()))
	for i, c := range cases {
		h, p, err := dec.ReadFrame()
		if err != nil || h.Type != TErr || h.Session != uint32(100+i) {
			t.Fatalf("frame %d: hdr %+v err %v", i, h, err)
		}
		if p[0] != c.b {
			t.Errorf("frame %d: wire byte %d, want %d", i, p[0], c.b)
		}
		code, msg, err := ParseErr(h, p)
		if err != nil || code != c.code || msg != c.msg {
			t.Errorf("frame %d: ParseErr = %q %q %v, want %q %q", i, code, msg, err, c.code, c.msg)
		}
	}
	if _, _, err := dec.ReadFrame(); err != io.EOF {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}

func TestErrCodeBytesRoundTrip(t *testing.T) {
	for _, code := range []string{
		CodeBadRequest, CodeUnknownSession, CodeBadSequence, CodeSessionClosed,
		CodeSessionComplete, CodeDraining, CodeBudgetExhausted, CodeLeaseExpired, CodeNotOwner,
		CodeTenantThrottled, CodeTenantSuspended, CodeTenantShed,
	} {
		if got := ErrCodeString(ErrCodeByte(code)); got != code {
			t.Errorf("code %q round-tripped to %q", code, got)
		}
	}
	// Unknown codes degrade to bad_request rather than dropping the frame.
	if got := ErrCodeString(ErrCodeByte("no_such_code")); got != CodeBadRequest {
		t.Errorf("unknown code mapped to %q", got)
	}
	if got := ErrCodeString(0xff); got != CodeBadRequest {
		t.Errorf("unknown byte mapped to %q", got)
	}
}

func TestCodecPoolsReuse(t *testing.T) {
	var buf bytes.Buffer
	enc := GetEncoder(&buf)
	if err := enc.DoneNext(9, &DoneRequest{NowS: 2, EnergyJ: 3, Accuracy: 1}, &NextRequest{NowS: 2}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	PutEncoder(enc)

	dec := GetDecoder(&buf)
	h, p, err := dec.ReadFrame()
	if err != nil || h.Type != TDoneNext || h.Session != 9 {
		t.Fatalf("pooled decode: hdr %+v err %v", h, err)
	}
	if _, _, err := ParseDoneNext(h, p); err != nil {
		t.Fatal(err)
	}
	PutDecoder(dec)

	// A returned decoder must not read from its former stream.
	d2 := decPool.Get().(*Decoder)
	if d2.r != nil {
		if _, _, err := d2.ReadFrame(); err != io.EOF {
			t.Fatalf("pooled decoder still attached to old stream: %v", err)
		}
	}
	decPool.Put(d2)
}

// countingWriter swallows writes without buffering growth, so encoder
// benchmarks measure the codec, not a bytes.Buffer.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }

// BenchmarkFrameEncodeDoneNext pins the steady-state encode path at
// 0 allocs/op: one batched frame per governed iteration.
func BenchmarkFrameEncodeDoneNext(b *testing.B) {
	enc := NewEncoder(&countingWriter{})
	done := DoneRequest{NowS: 13.5, EnergyJ: 101.25, Accuracy: 0.875}
	next := NextRequest{NowS: 13.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.DoneNext(42, &done, &next); err != nil {
			b.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
}

// loopReader replays one frame forever, alloc-free.
type loopReader struct {
	raw []byte
	off int
}

func (r *loopReader) Read(p []byte) (int, error) {
	if r.off == len(r.raw) {
		r.off = 0
	}
	n := copy(p, r.raw[r.off:])
	r.off += n
	return n, nil
}

// BenchmarkFrameDecodeDoneNext pins the steady-state decode path at
// 0 allocs/op.
func BenchmarkFrameDecodeDoneNext(b *testing.B) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.DoneNext(42, &DoneRequest{NowS: 13.5, EnergyJ: 101.25, Accuracy: 0.875}, &NextRequest{NowS: 13.5}); err != nil {
		b.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	dec := NewDecoder(&loopReader{raw: buf.Bytes()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, p, err := dec.ReadFrame()
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ParseDoneNext(h, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameRoundTrip is the full encode+decode cost of one batched
// iteration frame pair, also at 0 allocs/op.
func BenchmarkFrameRoundTrip(b *testing.B) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	dec := NewDecoder(&buf)
	done := DoneRequest{NowS: 13.5, EnergyJ: 101.25, Accuracy: 0.875}
	next := NextRequest{NowS: 13.5}
	doneResp := DoneResponse{IterationsDone: 7, SpentJ: 55.5, GrantRemainingJ: 44.5}
	nextResp := NextResponse{Iter: 8, AppConfig: 3, SysConfig: 11}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.DoneNext(42, &done, &next); err != nil {
			b.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			b.Fatal(err)
		}
		h, p, err := dec.ReadFrame()
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ParseDoneNext(h, p); err != nil {
			b.Fatal(err)
		}
		if err := enc.DoneNextResp(42, doneResp, nextResp); err != nil {
			b.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			b.Fatal(err)
		}
		h, p, err = dec.ReadFrame()
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ParseDoneNextResp(h, p); err != nil {
			b.Fatal(err)
		}
	}
}
