package wire

// The v2 wire layer: length-prefixed binary frames over a persistent
// connection, replacing one JSON/HTTP round trip per governed iteration
// with one write + one read on a long-lived stream. v1 (JSON over HTTP)
// remains the registration, introspection, teardown and cluster control
// plane; v2 carries only the per-iteration hot path — Next, Done and
// the pipelined DoneNext batch that settles the previous iteration and
// fetches the upcoming decision in a single frame.
//
// A v2 stream is opened by upgrading an HTTP/1.1 request on V2Path
// (`POST /v2/stream` with `Upgrade: jouleguard-frames/2`); the server
// hijacks the connection and both sides speak frames from then on. One
// stream may multiplex any number of sessions: every frame header
// carries the numeric session id the daemon returned at registration
// (RegisterResponse.SessionNum), so 10k sessions do not need 10k
// connections. Replies are returned in request order.
//
// Frame layout (all integers little-endian, floats IEEE-754 bits):
//
//	offset  size  field
//	0       2     magic 0x32 0x4A ("2J" on the wire; MagicV2)
//	2       1     type (TNext, TDone, ...)
//	3       1     flags (per-type bit set, see Flag*)
//	4       4     session (numeric session id, uint32)
//	8       4     length (payload bytes that follow, uint32)
//	12      —     payload
//
// Payloads are fixed-width binary except TErr, which carries one code
// byte followed by a UTF-8 message. The codec allocates nothing on the
// steady-state encode/decode path (pinned by BenchmarkFrame* at
// 0 allocs/op); encoders and decoders are pooled (GetEncoder /
// GetDecoder) so connection churn reuses their buffers.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// V2Path is the HTTP route a v2 stream upgrade is requested on.
const V2Path = "/v2/stream"

// V2Proto names the protocol in the Upgrade header.
const V2Proto = "jouleguard-frames/2"

// MagicV2 is the two-byte frame preamble ("2J" little-endian).
const MagicV2 = uint16(0x4A32)

// HeaderLen is the fixed frame-header size in bytes.
const HeaderLen = 12

// MaxFramePayload bounds a frame's payload; anything larger is a
// protocol error (the hot-path payloads are all under 64 bytes, and
// even an error message has no business being bigger than this).
const MaxFramePayload = 64 << 10

// Frame types.
const (
	// TNext asks for the upcoming iteration's decision (payload:
	// NextRequest, 8 bytes).
	TNext = byte(1)
	// TNextResp carries the decision (payload: NextResponse, 12 bytes).
	TNextResp = byte(2)
	// TDone reports a completed iteration (payload: DoneRequest,
	// 24 bytes; FlagEnergyErr in the header).
	TDone = byte(3)
	// TDoneResp acknowledges it with the ledger view (payload:
	// DoneResponse, 20 bytes; Degraded/Infeasible/Complete as flags).
	TDoneResp = byte(4)
	// TDoneNext settles the previous iteration and asks for the next
	// decision in one frame — the steady-state batch (payload:
	// DoneRequest + NextRequest.NowS, 32 bytes).
	TDoneNext = byte(5)
	// TDoneNextResp answers it (payload: DoneResponse + NextResponse,
	// 32 bytes). When Done succeeds but Next cannot (e.g. the workload
	// just completed), the server answers TDoneResp instead.
	TDoneNextResp = byte(6)
	// TErr reports a failed request (payload: one ErrCode byte + UTF-8
	// message). The stream stays usable.
	TErr = byte(7)
)

// Header flag bits (meaning depends on the frame type).
const (
	// FlagEnergyErr on TDone/TDoneNext marks a failed client meter read.
	FlagEnergyErr = byte(1 << 0)
	// FlagDegraded, FlagInfeasible, FlagComplete on TDoneResp /
	// TDoneNextResp mirror the DoneResponse booleans.
	FlagDegraded   = byte(1 << 1)
	FlagInfeasible = byte(1 << 2)
	FlagComplete   = byte(1 << 3)
	// FlagTraced on TNext/TDone/TDoneNext marks a TraceExtLen-byte
	// trailing extension on the payload: TraceID then SpanID, uint64 LE.
	// The capability is negotiated at upgrade (V2TraceHeader) so a new
	// client never sends extended frames to an old daemon; an old client
	// never sets the flag, and its exact-base-length frames parse as
	// before — the two protocol generations interoperate both ways.
	FlagTraced = byte(1 << 4)
)

// TraceExtLen is the FlagTraced trailing extension size (two uint64s).
const TraceExtLen = 16

// V2TraceHeader is the upgrade-negotiation header for the FlagTraced
// extension: the client sends it with the upgrade request, the daemon
// echoes it in the 101 reply iff it understands traced frames.
const V2TraceHeader = "X-Jouleguard-Trace"

// Payload sizes per type (base sizes; FlagTraced appends TraceExtLen).
const (
	nextLen         = 8
	nextRespLen     = 12
	doneLen         = 24
	doneRespLen     = 20
	doneNextLen     = doneLen + 8
	doneNextRespLen = doneRespLen + nextRespLen
)

// ErrCode is the single-byte rendering of the stable v1 error codes, so
// a TErr frame round-trips onto exactly the code a JSON ErrorResponse
// would have carried.
var errCodes = []string{
	1:  CodeBadRequest,
	2:  CodeUnknownSession,
	3:  CodeBadSequence,
	4:  CodeSessionClosed,
	5:  CodeSessionComplete,
	6:  CodeDraining,
	7:  CodeBudgetExhausted,
	8:  CodeLeaseExpired,
	9:  CodeNotOwner,
	10: CodeTenantThrottled,
	11: CodeTenantSuspended,
	12: CodeTenantShed,
}

// ErrCodeByte maps a stable string code onto its wire byte (0 if the
// code has no v2 rendering; it is sent as bad_request's byte then).
func ErrCodeByte(code string) byte {
	for b, c := range errCodes {
		if c == code {
			return byte(b)
		}
	}
	return 1 // bad_request
}

// ErrCodeString maps a wire byte back onto the stable string code.
func ErrCodeString(b byte) string {
	if int(b) < len(errCodes) && errCodes[b] != "" {
		return errCodes[b]
	}
	return CodeBadRequest
}

// Hdr is one decoded frame header.
type Hdr struct {
	Type    byte
	Flags   byte
	Session uint32
	Len     uint32
}

// ---------------------------------------------------------------------
// Encoder.

// Encoder writes frames into a buffered writer. Not safe for concurrent
// use; each connection owns one (GetEncoder/PutEncoder pool them).
type Encoder struct {
	w       *bufio.Writer
	scratch [HeaderLen + doneNextLen + TraceExtLen]byte
}

// NewEncoder builds an unpooled encoder (tests; prefer GetEncoder).
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriterSize(w, 4096)}
}

// header fills the scratch prefix.
func (e *Encoder) header(t, flags byte, session, length uint32) {
	binary.LittleEndian.PutUint16(e.scratch[0:2], MagicV2)
	e.scratch[2] = t
	e.scratch[3] = flags
	binary.LittleEndian.PutUint32(e.scratch[4:8], session)
	binary.LittleEndian.PutUint32(e.scratch[8:12], length)
}

// putTraceExt appends the FlagTraced extension at payload offset off and
// returns the extended payload length.
func (e *Encoder) putTraceExt(off int, trace, span uint64) uint32 {
	binary.LittleEndian.PutUint64(e.scratch[HeaderLen+off:], trace)
	binary.LittleEndian.PutUint64(e.scratch[HeaderLen+off+8:], span)
	return uint32(off + TraceExtLen)
}

// Next writes a TNext frame; a nonzero req.TraceID rides the FlagTraced
// trailing extension (the caller must have negotiated it at upgrade).
// Requests pass by pointer: the trace fields push them past the register
// ABI, and the by-value spill alone was measurable on the encode path.
func (e *Encoder) Next(session uint32, req *NextRequest) error {
	length, flags := uint32(nextLen), byte(0)
	if req.TraceID != 0 {
		flags |= FlagTraced
		length = e.putTraceExt(nextLen, req.TraceID, req.SpanID)
	}
	e.header(TNext, flags, session, length)
	binary.LittleEndian.PutUint64(e.scratch[12:20], math.Float64bits(req.NowS))
	_, err := e.w.Write(e.scratch[:HeaderLen+int(length)])
	return err
}

// NextResp writes a TNextResp frame.
func (e *Encoder) NextResp(session uint32, resp NextResponse) error {
	e.header(TNextResp, 0, session, nextRespLen)
	putNextResp(e.scratch[12:], resp)
	_, err := e.w.Write(e.scratch[:HeaderLen+nextRespLen])
	return err
}

// Done writes a TDone frame; a nonzero req.TraceID rides the FlagTraced
// trailing extension.
func (e *Encoder) Done(session uint32, req *DoneRequest) error {
	var flags byte
	if req.EnergyErr {
		flags |= FlagEnergyErr
	}
	length := uint32(doneLen)
	if req.TraceID != 0 {
		flags |= FlagTraced
		length = e.putTraceExt(doneLen, req.TraceID, req.SpanID)
	}
	e.header(TDone, flags, session, length)
	putDone(e.scratch[12:], req)
	_, err := e.w.Write(e.scratch[:HeaderLen+int(length)])
	return err
}

// DoneResp writes a TDoneResp frame.
func (e *Encoder) DoneResp(session uint32, resp DoneResponse) error {
	e.header(TDoneResp, doneFlags(resp), session, doneRespLen)
	putDoneResp(e.scratch[12:], resp)
	_, err := e.w.Write(e.scratch[:HeaderLen+doneRespLen])
	return err
}

// DoneNext writes the batched TDoneNext frame: settle the previous
// iteration (done) and ask for the next decision (next) in one write.
// The trace context is shared by the pair: a nonzero done.TraceID rides
// one FlagTraced extension covering both halves.
func (e *Encoder) DoneNext(session uint32, done *DoneRequest, next *NextRequest) error {
	if done.TraceID != 0 {
		return e.doneNextTraced(session, done, next)
	}
	// Untraced steady state: constant sizes all the way down, so the
	// compiler keeps the slice bounds static.
	var flags byte
	if done.EnergyErr {
		flags |= FlagEnergyErr
	}
	e.header(TDoneNext, flags, session, doneNextLen)
	putDone(e.scratch[12:], done)
	binary.LittleEndian.PutUint64(e.scratch[12+doneLen:], math.Float64bits(next.NowS))
	_, err := e.w.Write(e.scratch[:HeaderLen+doneNextLen])
	return err
}

// doneNextTraced is the head-sampled slow path: same frame plus the
// shared FlagTraced extension.
func (e *Encoder) doneNextTraced(session uint32, done *DoneRequest, next *NextRequest) error {
	flags := FlagTraced
	if done.EnergyErr {
		flags |= FlagEnergyErr
	}
	length := e.putTraceExt(doneNextLen, done.TraceID, done.SpanID)
	e.header(TDoneNext, flags, session, length)
	putDone(e.scratch[12:], done)
	binary.LittleEndian.PutUint64(e.scratch[12+doneLen:], math.Float64bits(next.NowS))
	_, err := e.w.Write(e.scratch[:HeaderLen+int(length)])
	return err
}

// DoneNextResp writes the batched TDoneNextResp frame.
func (e *Encoder) DoneNextResp(session uint32, done DoneResponse, next NextResponse) error {
	e.header(TDoneNextResp, doneFlags(done), session, doneNextRespLen)
	putDoneResp(e.scratch[12:], done)
	putNextResp(e.scratch[12+doneRespLen:], next)
	_, err := e.w.Write(e.scratch[:HeaderLen+doneNextRespLen])
	return err
}

// Err writes a TErr frame carrying a stable code and a message.
func (e *Encoder) Err(session uint32, code, msg string) error {
	if len(msg) > MaxFramePayload-1 {
		msg = msg[:MaxFramePayload-1]
	}
	e.header(TErr, 0, session, uint32(1+len(msg)))
	if _, err := e.w.Write(e.scratch[:HeaderLen]); err != nil {
		return err
	}
	if err := e.w.WriteByte(ErrCodeByte(code)); err != nil {
		return err
	}
	_, err := e.w.WriteString(msg)
	return err
}

// Flush pushes buffered frames onto the connection.
func (e *Encoder) Flush() error { return e.w.Flush() }

func doneFlags(resp DoneResponse) byte {
	var flags byte
	if resp.Degraded {
		flags |= FlagDegraded
	}
	if resp.Infeasible {
		flags |= FlagInfeasible
	}
	if resp.Complete {
		flags |= FlagComplete
	}
	return flags
}

func putDone(b []byte, req *DoneRequest) {
	binary.LittleEndian.PutUint64(b[0:8], math.Float64bits(req.NowS))
	binary.LittleEndian.PutUint64(b[8:16], math.Float64bits(req.EnergyJ))
	binary.LittleEndian.PutUint64(b[16:24], math.Float64bits(req.Accuracy))
}

func putDoneResp(b []byte, resp DoneResponse) {
	binary.LittleEndian.PutUint32(b[0:4], uint32(resp.IterationsDone))
	binary.LittleEndian.PutUint64(b[4:12], math.Float64bits(resp.SpentJ))
	binary.LittleEndian.PutUint64(b[12:20], math.Float64bits(resp.GrantRemainingJ))
}

func putNextResp(b []byte, resp NextResponse) {
	binary.LittleEndian.PutUint32(b[0:4], uint32(resp.Iter))
	binary.LittleEndian.PutUint32(b[4:8], uint32(resp.AppConfig))
	binary.LittleEndian.PutUint32(b[8:12], uint32(resp.SysConfig))
}

// ---------------------------------------------------------------------
// Decoder.

// Decoder reads frames from a buffered reader into a reusable payload
// buffer. Not safe for concurrent use; each connection owns one
// (GetDecoder/PutDecoder pool them).
type Decoder struct {
	r       *bufio.Reader
	hdr     [HeaderLen]byte
	payload []byte
}

// NewDecoder builds an unpooled decoder. If r is already a
// *bufio.Reader with a large enough buffer (the HTTP-hijack path hands
// one over, possibly holding pipelined frames the client sent behind
// the upgrade request), it is used directly.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, 4096)}
}

// ReadFrame reads one frame. The returned payload slice is valid only
// until the next ReadFrame call (it aliases the decoder's buffer).
func (d *Decoder) ReadFrame() (Hdr, []byte, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		return Hdr{}, nil, err
	}
	if binary.LittleEndian.Uint16(d.hdr[0:2]) != MagicV2 {
		return Hdr{}, nil, fmt.Errorf("wire: bad frame magic %#x", binary.LittleEndian.Uint16(d.hdr[0:2]))
	}
	h := Hdr{
		Type:    d.hdr[2],
		Flags:   d.hdr[3],
		Session: binary.LittleEndian.Uint32(d.hdr[4:8]),
		Len:     binary.LittleEndian.Uint32(d.hdr[8:12]),
	}
	if h.Len > MaxFramePayload {
		return Hdr{}, nil, fmt.Errorf("wire: frame payload %d exceeds %d-byte cap", h.Len, MaxFramePayload)
	}
	if cap(d.payload) < int(h.Len) {
		d.payload = make([]byte, h.Len)
	}
	p := d.payload[:h.Len]
	if _, err := io.ReadFull(d.r, p); err != nil {
		return Hdr{}, nil, fmt.Errorf("wire: truncated frame payload: %w", err)
	}
	return h, p, nil
}

// Buffered reports bytes already read from the connection but not yet
// consumed — a pipelining server flushes replies only when it drops to
// zero, so a burst of frames gets one write back.
func (d *Decoder) Buffered() int { return d.r.Buffered() }

// wantLen validates a payload length against its type's base size plus
// the FlagTraced extension when the flag is set.
func wantLen(h Hdr, base int) error {
	want := base
	if h.Flags&FlagTraced != 0 {
		want += TraceExtLen
	}
	if int(h.Len) != want {
		return fmt.Errorf("wire: frame type %d payload %d bytes, want %d", h.Type, h.Len, want)
	}
	return nil
}

// getTraceExt reads the FlagTraced extension trailing the base payload.
func getTraceExt(h Hdr, p []byte, base int) (trace, span uint64) {
	if h.Flags&FlagTraced == 0 {
		return 0, 0
	}
	return binary.LittleEndian.Uint64(p[base : base+8]),
		binary.LittleEndian.Uint64(p[base+8 : base+16])
}

// ParseNext decodes a TNext payload.
func ParseNext(h Hdr, p []byte) (NextRequest, error) {
	if err := wantLen(h, nextLen); err != nil {
		return NextRequest{}, err
	}
	req := NextRequest{NowS: math.Float64frombits(binary.LittleEndian.Uint64(p[0:8]))}
	req.TraceID, req.SpanID = getTraceExt(h, p, nextLen)
	return req, nil
}

// ParseNextResp decodes a TNextResp payload.
func ParseNextResp(h Hdr, p []byte) (NextResponse, error) {
	if h.Len != nextRespLen {
		return NextResponse{}, fmt.Errorf("wire: TNextResp payload %d bytes, want %d", h.Len, nextRespLen)
	}
	return getNextResp(p), nil
}

// ParseDone decodes a TDone payload (EnergyErr rides in the header).
func ParseDone(h Hdr, p []byte) (DoneRequest, error) {
	if err := wantLen(h, doneLen); err != nil {
		return DoneRequest{}, err
	}
	req := getDone(h.Flags, p)
	req.TraceID, req.SpanID = getTraceExt(h, p, doneLen)
	return req, nil
}

// ParseDoneResp decodes a TDoneResp payload.
func ParseDoneResp(h Hdr, p []byte) (DoneResponse, error) {
	if h.Len != doneRespLen {
		return DoneResponse{}, fmt.Errorf("wire: TDoneResp payload %d bytes, want %d", h.Len, doneRespLen)
	}
	return getDoneResp(h.Flags, p), nil
}

// ParseDoneNext decodes the batched TDoneNext payload; the trace
// context (one extension for the pair) lands on both halves.
func ParseDoneNext(h Hdr, p []byte) (DoneRequest, NextRequest, error) {
	if err := wantLen(h, doneNextLen); err != nil {
		return DoneRequest{}, NextRequest{}, err
	}
	done := getDone(h.Flags, p)
	next := NextRequest{NowS: math.Float64frombits(binary.LittleEndian.Uint64(p[doneLen : doneLen+8]))}
	done.TraceID, done.SpanID = getTraceExt(h, p, doneNextLen)
	next.TraceID, next.SpanID = done.TraceID, done.SpanID
	return done, next, nil
}

// ParseDoneNextResp decodes the batched TDoneNextResp payload.
func ParseDoneNextResp(h Hdr, p []byte) (DoneResponse, NextResponse, error) {
	if h.Len != doneNextRespLen {
		return DoneResponse{}, NextResponse{}, fmt.Errorf("wire: TDoneNextResp payload %d bytes, want %d", h.Len, doneNextRespLen)
	}
	return getDoneResp(h.Flags, p), getNextResp(p[doneRespLen:]), nil
}

// ParseErr decodes a TErr payload into (code, message). The message
// string is copied (errors are off the hot path).
func ParseErr(h Hdr, p []byte) (code, msg string, err error) {
	if h.Len < 1 {
		return "", "", fmt.Errorf("wire: empty TErr payload")
	}
	return ErrCodeString(p[0]), string(p[1:]), nil
}

func getDone(flags byte, p []byte) DoneRequest {
	return DoneRequest{
		NowS:      math.Float64frombits(binary.LittleEndian.Uint64(p[0:8])),
		EnergyJ:   math.Float64frombits(binary.LittleEndian.Uint64(p[8:16])),
		Accuracy:  math.Float64frombits(binary.LittleEndian.Uint64(p[16:24])),
		EnergyErr: flags&FlagEnergyErr != 0,
	}
}

func getDoneResp(flags byte, p []byte) DoneResponse {
	return DoneResponse{
		IterationsDone:  int(binary.LittleEndian.Uint32(p[0:4])),
		SpentJ:          math.Float64frombits(binary.LittleEndian.Uint64(p[4:12])),
		GrantRemainingJ: math.Float64frombits(binary.LittleEndian.Uint64(p[12:20])),
		Degraded:        flags&FlagDegraded != 0,
		Infeasible:      flags&FlagInfeasible != 0,
		Complete:        flags&FlagComplete != 0,
	}
}

func getNextResp(p []byte) NextResponse {
	return NextResponse{
		Iter:      int(binary.LittleEndian.Uint32(p[0:4])),
		AppConfig: int(binary.LittleEndian.Uint32(p[4:8])),
		SysConfig: int(binary.LittleEndian.Uint32(p[8:12])),
	}
}

// ---------------------------------------------------------------------
// Pools. Connections are long-lived, but a node cycling 10k sessions
// through reconnects should not re-grow codec buffers each time.

var encPool = sync.Pool{New: func() any { return NewEncoder(io.Discard) }}
var decPool = sync.Pool{New: func() any { return &Decoder{} }}

// GetEncoder leases a pooled encoder bound to w.
func GetEncoder(w io.Writer) *Encoder {
	e := encPool.Get().(*Encoder)
	e.w.Reset(w)
	return e
}

// PutEncoder returns an encoder to the pool; the caller must not use it
// afterwards. Buffered frames are discarded — Flush first.
func PutEncoder(e *Encoder) {
	e.w.Reset(io.Discard)
	encPool.Put(e)
}

// GetDecoder leases a pooled decoder bound to r. A *bufio.Reader with a
// large enough buffer is adopted directly (it may hold pipelined frames
// already read off the socket), replacing the pooled one.
func GetDecoder(r io.Reader) *Decoder {
	d := decPool.Get().(*Decoder)
	if br, ok := r.(*bufio.Reader); ok && br.Size() >= 4096 {
		d.r = br
		return d
	}
	if d.r == nil {
		d.r = bufio.NewReaderSize(r, 4096)
	} else {
		d.r.Reset(r)
	}
	return d
}

// PutDecoder returns a decoder to the pool. The payload buffer is kept
// (that is the point of pooling); the reader is detached so the pool
// never pins a connection.
func PutDecoder(d *Decoder) {
	if d.r != nil {
		d.r.Reset(eofReader{})
	}
	decPool.Put(d)
}

// eofReader detaches a pooled decoder from its former connection.
type eofReader struct{}

func (eofReader) Read([]byte) (int, error) { return 0, io.EOF }
