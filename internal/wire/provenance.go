// Joule provenance: the audit answer to "where did this joule come
// from, and where is it now". The custody chain is
//
//	fleet budget -> epoch-fenced lease -> member broker pool
//	            -> tenant share -> session grant -> per-iteration spend
//
// Members render the lower half at /v1/provenance?session= (broker pool
// downward); the coordinator renders the upper half at
// /v1/cluster/provenance (fleet budget down to node leases). Every
// layer carries an explicit conservation check — the joules entering it
// minus the joules its parts account for — and a continuous auditor
// exports the same drifts as jouleguard_provenance_drift_joules so a
// broken ledger shows up on a scrape, not just in a post-mortem.
package wire

// ProvenancePath is the member-side custody-chain route
// (GET /v1/provenance?session=<id or key>).
const ProvenancePath = "/" + Version + "/provenance"

// ProvenanceLayer is one conservation check in the custody chain:
// ExpectJ enters the layer, its parts sum to SumJ, DriftJ is the
// difference (0 within 1e-6 when the books balance).
type ProvenanceLayer struct {
	Layer   string  `json:"layer"`
	ExpectJ float64 `json:"expect_j"`
	SumJ    float64 `json:"sum_j"`
	DriftJ  float64 `json:"drift_j"`
}

// IterSpend is one iteration's energy custody record, from the flight
// recorder: Seq is the recorder's cursor, EnergyJ the joules the
// session ledger debited for that iteration.
type IterSpend struct {
	Seq     uint64  `json:"seq"`
	Iter    int     `json:"iter"`
	EnergyJ float64 `json:"energy_j"`
}

// SessionProvenance is a member's custody chain for one session: the
// node's lease feeding the broker pool, the pool splitting into
// committed/consumed/available, the tenant's share terms, the session
// grant, and the per-iteration spends the grant dissolved into.
type SessionProvenance struct {
	Session string `json:"session"`
	Key     string `json:"key,omitempty"`
	Node    string `json:"node,omitempty"`
	Fence   int64  `json:"fence"`

	// LeaseJ is the member's cumulative coordinator lease — the broker's
	// global pool (identical outside a fleet, where the pool is the
	// configured budget).
	LeaseJ float64    `json:"lease_j"`
	Broker BrokerInfo `json:"broker"`

	Tenant       string  `json:"tenant"`
	TenantWeight float64 `json:"tenant_weight"`
	TenantCarryJ float64 `json:"tenant_carry_j"`

	GrantJ     float64 `json:"grant_j"`
	ImportedJ  float64 `json:"imported_j,omitempty"`
	SpentJ     float64 `json:"spent_j"`
	RemainingJ float64 `json:"remaining_j"`

	// Iterations is the session's per-iteration spend still held by the
	// flight recorder (older iterations have been overwritten; IterDrift
	// reconciliation only covers the retained window).
	Iterations []IterSpend `json:"iterations,omitempty"`

	// Layers are the conservation checks, outermost first.
	Layers []ProvenanceLayer `json:"layers"`
}

// NodeCustody is the coordinator's ledger view of one node's lease in
// the cluster provenance answer.
type NodeCustody struct {
	Node     string  `json:"node"`
	Live     bool    `json:"live"`
	LeaseJ   float64 `json:"lease_j"`
	AckedJ   float64 `json:"acked_j"`
	EscrowJ  float64 `json:"escrow_j,omitempty"`
	UnspentJ float64 `json:"unspent_j"`
}

// ClusterProvenance is the coordinator's custody chain: the fleet
// budget split into the leasable pool, the failover reserve, live
// nodes' unspent leases, and booked consumption.
type ClusterProvenance struct {
	Fence int64  `json:"fence"`
	Role  string `json:"role"`

	FleetJ         float64 `json:"fleet_j"`
	PoolJ          float64 `json:"pool_j"`
	ReserveJ       float64 `json:"reserve_j"`
	LeasedUnspentJ float64 `json:"leased_unspent_j"`
	ConsumedJ      float64 `json:"consumed_j"`

	Nodes []NodeCustody `json:"nodes,omitempty"`

	// Layers are the conservation checks; the fleet layer asserts
	// FleetJ = PoolJ + ReserveJ + LeasedUnspentJ + ConsumedJ.
	Layers []ProvenanceLayer `json:"layers"`
}
