package jouleguard_test

import (
	"fmt"

	"jouleguard"
)

// The registries expose the paper's benchmarks and platforms by name.
func Example_registries() {
	fmt.Println(jouleguard.Benchmarks())
	fmt.Println(jouleguard.Platforms())
	// Output:
	// [x264 swaptions bodytrack swish++ radar canneal ferret streamcluster]
	// [Mobile Tablet Server]
}

// Table 2's configuration counts are reproduced exactly.
func ExampleTable2() {
	for _, spec := range jouleguard.Table2() {
		fmt.Printf("%s: %d configs\n", spec.Name, spec.Configs)
	}
	// Output:
	// x264: 560 configs
	// swaptions: 100 configs
	// bodytrack: 200 configs
	// swish++: 6 configs
	// radar: 26 configs
	// canneal: 3 configs
	// ferret: 8 configs
	// streamcluster: 7 configs
}

// A testbed binds one benchmark to one platform and profiles its
// accuracy/performance frontier (the PowerDial calibration step).
func ExampleNewTestbed() {
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("app configs: %d\n", tb.App.NumConfigs())
	fmt.Printf("sys configs: %d\n", tb.Platform.NumConfigs())
	fmt.Printf("frontier max speedup ~19x: %v\n", tb.Frontier.MaxSpeedup() > 18)
	// Output:
	// app configs: 26
	// sys configs: 44
	// frontier max speedup ~19x: true
}

// Running JouleGuard: ask for a fraction of the default energy and get an
// accuracy-maximising schedule that respects it.
func ExampleTestbed_NewJouleGuard() {
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		fmt.Println(err)
		return
	}
	const iters = 400
	gov, err := tb.NewJouleGuard(2.0, iters, jouleguard.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	rec, err := tb.Run(gov, iters)
	if err != nil {
		fmt.Println(err)
		return
	}
	goal := tb.DefaultEnergy / 2
	fmt.Printf("goal respected (within 5%%): %v\n", rec.EnergyPerIterAvg() <= goal*1.05)
	fmt.Printf("accuracy above 0.9: %v\n", rec.MeanAccuracy() > 0.9)
	fmt.Printf("feasible: %v\n", !gov.Infeasible())
	// Output:
	// goal respected (within 5%): true
	// accuracy above 0.9: true
	// feasible: true
}

// The Sec. 3.7 approximate-hardware mode: the accuracy knob scales power
// instead of timing.
func ExampleNewHardwareTestbed() {
	unit, err := jouleguard.NewHardwareUnit(8, 0.7, 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	tb, err := jouleguard.NewHardwareTestbed(unit, "Tablet")
	if err != nil {
		fmt.Println(err)
		return
	}
	gov, err := tb.NewJouleGuard(1.05, 800, jouleguard.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	rec, err := tb.Run(gov, 800)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("quality above 0.9: %v\n", rec.MeanAccuracy() > 0.9)
	fmt.Printf("feasible: %v\n", !gov.Infeasible())
	// Output:
	// quality above 0.9: true
	// feasible: true
}

// Driving a real application loop: the OnlineController needs only a
// governor, a joule counter and a clock.
func ExampleNewOnline() {
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		fmt.Println(err)
		return
	}
	gov, err := tb.NewJouleGuard(2, 100, jouleguard.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	// A toy machine: constant 5 W, 100 iterations/second.
	var clock float64
	readEnergy := func() (float64, error) { return 5 * clock, nil }
	ctl, err := jouleguard.NewOnline(gov, readEnergy, func() float64 { return clock })
	if err != nil {
		fmt.Println(err)
		return
	}
	for i := 0; i < 100; i++ {
		ctl.Next()
		clock += 0.01 // the work takes 10 ms
		if err := ctl.Done(1); err != nil {
			fmt.Println(err)
			return
		}
	}
	fmt.Printf("iterations: %d\n", ctl.Iterations())
	fmt.Printf("heart rate ~100/s: %v\n", ctl.HeartRate() > 99 && ctl.HeartRate() < 101)
	// Output:
	// iterations: 100
	// heart rate ~100/s: true
}

// The oracle answers "what is the best accuracy any scheduler could get?"
// (Eqn 13's denominator).
func ExampleTestbed_NewOracle() {
	tb, err := jouleguard.NewTestbed("ferret", "Tablet")
	if err != nil {
		fmt.Println(err)
		return
	}
	orc, err := tb.NewOracle()
	if err != nil {
		fmt.Println(err)
		return
	}
	_, ok := orc.BestAccuracyForFactor(1.1)
	fmt.Printf("1.1x feasible: %v\n", ok)
	_, ok = orc.BestAccuracyForFactor(10)
	fmt.Printf("10x feasible: %v\n", ok)
	// Output:
	// 1.1x feasible: true
	// 10x feasible: false
}
