module jouleguard

go 1.24
